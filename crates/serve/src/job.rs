//! Job specs and the per-job training state machine.

use instant3d_core::{checkpoint, TrainConfig, Trainer};
use instant3d_scenes::{Dataset, SceneLibrary};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which scene substrate a job reconstructs — the demo fleet mixes all
/// three of the paper's dataset families plus size variation within them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneSpec {
    /// One of the eight NeRF-Synthetic-like primitive scenes.
    Synthetic {
        /// Scene index in `0..8`.
        index: usize,
        /// Square image resolution.
        resolution: u32,
        /// Training cameras on the orbit rig.
        train_views: usize,
    },
    /// The SILVR-like large-volume hall.
    Silvr {
        /// Square image resolution.
        resolution: u32,
        /// Training cameras.
        train_views: usize,
    },
    /// The ScanNet-like room with a walking trajectory and sensor noise.
    Scannet {
        /// Square image resolution.
        resolution: u32,
        /// Training cameras.
        train_views: usize,
    },
}

impl SceneSpec {
    /// Builds the dataset, drawing any scene randomness from `rng` (part
    /// of the job's seeded stream, so the dataset is a pure function of
    /// the spec + seed).
    pub fn build(&self, rng: &mut StdRng) -> Dataset {
        match *self {
            SceneSpec::Synthetic {
                index,
                resolution,
                train_views,
            } => SceneLibrary::synthetic_scene(index, resolution, train_views, rng),
            SceneSpec::Silvr {
                resolution,
                train_views,
            } => SceneLibrary::silvr_scene(resolution, train_views, rng),
            SceneSpec::Scannet {
                resolution,
                train_views,
            } => SceneLibrary::scannet_scene(resolution, train_views, rng),
        }
    }
}

/// Everything that determines a job's results: scene, training config,
/// seed and budgets. Two runs of the same spec — solo or co-scheduled in
/// any fleet — produce bit-identical checkpoints (see the crate docs).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Checkpoint-store key and report label; unique within a fleet.
    pub name: String,
    /// The scene to reconstruct.
    pub scene: SceneSpec,
    /// Training configuration (including the kernel backend).
    pub config: TrainConfig,
    /// Seed for the job's private RNG (dataset build + training stream).
    pub seed: u64,
    /// Total training iterations.
    pub iterations: u64,
    /// Checkpoint cadence in iterations (0 = only the final checkpoint).
    pub checkpoint_every: u64,
}

/// A booted job: trainer + private RNG + progress counters. Owned by one
/// fleet runner at a time, parked in the queue between slices.
pub(crate) struct SceneJob {
    pub(crate) spec: JobSpec,
    pub(crate) trainer: Trainer,
    pub(crate) rng: StdRng,
    /// Iterations executed so far.
    pub(crate) done: u64,
    /// Checkpoints written so far (cadence + final).
    pub(crate) checkpoints_written: u64,
    /// Loss of the last executed step.
    pub(crate) last_loss: f32,
    /// Batch workspaces this job received from the reuse pool.
    pub(crate) batch_recycled: u64,
    /// Whether the job's occupancy workspace came from the reuse pool.
    pub(crate) occ_recycled: bool,
}

impl JobSpec {
    /// Boots the job: dataset and trainer built from the job's own
    /// seeded RNG, which then continues as the training stream. This is
    /// the *entire* source of job randomness — the scheduler never
    /// touches it.
    pub(crate) fn boot(&self) -> SceneJob {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dataset = self.scene.build(&mut rng);
        let trainer = Trainer::new(self.config.clone(), &dataset, &mut rng);
        SceneJob {
            spec: self.clone(),
            trainer,
            rng,
            done: 0,
            checkpoints_written: 0,
            last_loss: f32::NAN,
            batch_recycled: 0,
            occ_recycled: false,
        }
    }
}

impl SceneJob {
    /// Iterations still to run.
    pub(crate) fn remaining(&self) -> u64 {
        self.spec.iterations.saturating_sub(self.done)
    }

    /// Runs one training step on the job's private stream.
    pub(crate) fn step(&mut self) {
        let s = self.trainer.step(&mut self.rng);
        self.last_loss = s.loss;
        self.done += 1;
    }

    /// Whether the cadence says to checkpoint after the step just run.
    pub(crate) fn due_checkpoint(&self) -> bool {
        self.spec.checkpoint_every > 0
            && self.done < self.spec.iterations
            && self.done.is_multiple_of(self.spec.checkpoint_every)
    }

    /// Serializes the current model.
    pub(crate) fn checkpoint(&mut self) -> Vec<u8> {
        self.checkpoints_written += 1;
        checkpoint::save(self.trainer.model())
    }
}

/// Trains `spec` start-to-finish in isolation — no fleet, no workspace
/// pool — and returns the final checkpoint. The reference side of the
/// determinism contract: a fleet-trained job's final checkpoint must be
/// bit-identical to this, at the same kernel backend and worker count.
pub fn train_solo(spec: &JobSpec) -> Vec<u8> {
    let mut job = spec.boot();
    while job.remaining() > 0 {
        job.step();
    }
    checkpoint::save(job.trainer.model())
}
