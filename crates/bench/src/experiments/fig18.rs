//! Fig. 18 — per-scene ablation of the FRM and BUM units.
//!
//! For each scene we capture a real training trace, measure the FRM's
//! achieved SRAM utilisation (vs the no-FRM baseline issue) and the BUM's
//! write-merge ratio on that trace, then evaluate the accelerator with
//! {neither, FRM only, FRM+BUM} using the measured factors.

use super::common::{capture_trace, flat_stream, synthetic_dataset};
use crate::table::Table;
use crate::workloads::paper_workload;
use instant3d_accel::{
    simulate_baseline_reads, simulate_bum, simulate_frm, Accelerator, BumConfig, FeatureSet,
};
use instant3d_core::TrainConfig;
use instant3d_devices::perf::ITERS_TO_PSNR25;
use instant3d_nerf::grid::{AccessPhase, GridBranch};

/// Runs the FRM/BUM ablation per scene.
pub fn run(quick: bool) {
    crate::banner(
        "Fig. 18",
        "Ablation: accelerator runtime without the FRM unit / without the BUM unit",
    );
    let cfg = crate::workloads::bench_config(TrainConfig::instant3d(), quick);
    let scenes = if quick {
        vec![0usize, 4]
    } else {
        (0..8).collect()
    };
    let budget = if quick { 10 } else { 24 };
    let capture: Vec<u64> = vec![budget - 2, budget - 1];

    let mut t = Table::new(&[
        "scene",
        "FRM util (measured)",
        "baseline util",
        "BUM writes/update",
        "runtime w/o FRM&BUM",
        "w/ FRM",
        "w/ FRM+BUM",
    ]);
    let mut frm_save_sum = 0.0f64;
    let mut both_save_sum = 0.0f64;
    for &i in &scenes {
        let ds = synthetic_dataset(i, quick, 1500 + i as u64);
        let (trace, trainer) =
            capture_trace(&cfg, &ds, &capture, budget, 2_000_000, 1600 + i as u64);

        // Trace-driven microarchitecture measurements (one core, B8 view).
        let ff = flat_stream(
            &trace,
            &trainer,
            AccessPhase::FeedForward,
            GridBranch::Density,
        );
        let frm = simulate_frm(&ff, 8, 16);
        let base = simulate_baseline_reads(&ff, 8, 8);
        let bp: Vec<u64> = trace.bp_stream_level_major();
        let bum = simulate_bum(&bp, BumConfig::default());

        // Plug the measured factors into the analytic model.
        let accel = Accelerator {
            frm_utilization: frm.utilization,
            baseline_utilization: base.utilization,
            bum_write_ratio: bum.write_ratio(),
            ..Accelerator::default()
        };
        let w = paper_workload(&cfg, ITERS_TO_PSNR25);
        let none = accel
            .simulate(
                &w,
                FeatureSet {
                    frm: false,
                    bum: false,
                    fusion: true,
                },
            )
            .seconds_total;
        let frm_only = accel
            .simulate(
                &w,
                FeatureSet {
                    frm: true,
                    bum: false,
                    fusion: true,
                },
            )
            .seconds_total;
        let both = accel.simulate(&w, FeatureSet::full()).seconds_total;
        frm_save_sum += 1.0 - frm_only / none;
        both_save_sum += 1.0 - both / none;
        t.row_owned(vec![
            ds.name.clone(),
            format!("{:.2}", frm.utilization),
            format!("{:.2}", base.utilization),
            format!("{:.2}", bum.write_ratio()),
            "100.0%".into(),
            format!("{:.1}%", frm_only / none * 100.0),
            format!("{:.1}%", both / none * 100.0),
        ]);
    }
    t.print();
    let n = scenes.len() as f64;
    println!(
        "\nAverage runtime reduction: FRM alone {:.1}% (paper: 31.1%); FRM+BUM\n\
         together {:.1}% (paper: 68.6%). Utilisation / merge factors above are\n\
         measured on this build's real training traces.",
        frm_save_sum / n * 100.0,
        both_save_sum / n * 100.0
    );
}
