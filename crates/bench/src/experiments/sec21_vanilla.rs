//! §2.1 — vanilla NeRF's training cost: the motivation for Instant-NGP
//! (and in turn Instant-3D). Reproduces the "353,895 trillion FLOPs, > 1
//! day on a V100" accounting and demonstrates the convergence gap on a
//! laptop-scale head-to-head.

use super::common::synthetic_dataset;
use crate::table::Table;
use instant3d_core::vanilla::{VanillaConfig, VanillaCostModel, VanillaTrainer};
use instant3d_core::{eval, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Prints the cost-model table and a measured vanilla-vs-grid comparison.
pub fn run(quick: bool) {
    crate::banner(
        "§2.1",
        "Vanilla NeRF training cost vs grid-based training (the motivating gap)",
    );
    let cost = VanillaCostModel::default();
    println!("Paper-scale vanilla NeRF training cost (per scene):");
    println!(
        "  iterations        : {:>12.0}   (paper: ~150,000)",
        cost.iterations
    );
    println!(
        "  points/iteration  : {:>12.0}   (192 points/pixel x 4,096 pixels)",
        cost.points_per_iter
    );
    println!("  MLP FLOPs/point   : {:>12.0}", cost.flops_per_point);
    println!(
        "  total train FLOPs : {:>12.0} trillion  (paper: 353,895 trillion)",
        cost.total_flops() / 1e12
    );
    println!(
        "  V100 training time: {:>12.1} days      (paper: > 1 day)\n",
        cost.days_on(15.7e12, 0.25)
    );

    // Laptop-scale head-to-head: same scene, same wall-clock-ish budgets.
    let iters = if quick { 60 } else { 300 };
    let ds = synthetic_dataset(0, quick, 2100);
    let mut table = Table::new(&["model", "iterations", "test PSNR (dB)", "params"]);

    let mut rng = StdRng::seed_from_u64(2200);
    let mut vanilla = VanillaTrainer::new(VanillaConfig::default(), &ds, &mut rng);
    for _ in 0..iters {
        vanilla.step(&mut rng);
    }
    // Evaluate the vanilla model by rendering through the shared field API.
    let v_psnr = {
        use instant3d_nerf::field::render_image;
        use instant3d_nerf::metrics::psnr_rgb;
        let mut acc = 0.0;
        for view in &ds.test_views {
            let (rgb, _) = render_image(vanilla.model(), &view.camera, 48, ds.background);
            acc += psnr_rgb(&view.image, &rgb);
        }
        acc / ds.test_views.len() as f32
    };
    table.row_owned(vec![
        "vanilla NeRF (freq-encoded MLP)".into(),
        iters.to_string(),
        format!("{v_psnr:.1}"),
        vanilla.model().num_params().to_string(),
    ]);

    let mut rng = StdRng::seed_from_u64(2300);
    let cfg = crate::workloads::bench_config(TrainConfig::instant3d(), quick);
    let mut grid = Trainer::new(cfg, &ds, &mut rng);
    for _ in 0..iters {
        grid.step(&mut rng);
    }
    let g = eval::evaluate(grid.model(), &ds, 48);
    table.row_owned(vec![
        "Instant-3D (decoupled hash grids)".into(),
        iters.to_string(),
        format!("{:.1}", g.rgb_psnr),
        grid.model().num_params().to_string(),
    ]);
    table.print();
    println!(
        "\nAt an equal iteration budget the grid model should be far ahead —\n\
         the gap Instant-NGP opened and Instant-3D makes instant on-device."
    );
}
