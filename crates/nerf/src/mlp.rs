//! Small fully-connected networks with hand-derived backpropagation
//! (Step ③-② of the pipeline).
//!
//! Instant-NGP replaces the vanilla-NeRF 10×256 MLP with tiny heads: a
//! density MLP (embedding → 64 → 16, first output = raw density) and a color
//! MLP (geometry features + SH(dir) → 64 → 64 → 3). These networks are small
//! enough that a straightforward cache-friendly implementation is fast; the
//! accelerator models them on a systolic array / multiplier-adder tree
//! (`instant3d-accel::mlp_unit`).

use crate::activation::Activation;
use crate::kernels::BackendHandle;
use crate::simd::{self, F32x8};
use rand::Rng;
use rayon::prelude::*;

/// Shape and activation of one dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerSpec {
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    /// Activation applied to the layer output.
    pub activation: Activation,
}

/// One dense layer: `y = act(W·x + b)` with `W` stored row-major
/// (`out_dim` rows × `in_dim` columns).
#[derive(Debug, Clone)]
pub struct Linear {
    spec: LayerSpec,
    w: Vec<f32>,
    b: Vec<f32>,
}

impl Linear {
    /// Creates a layer with He-uniform initialised weights and zero biases.
    pub fn new<R: Rng + ?Sized>(spec: LayerSpec, rng: &mut R) -> Self {
        let bound = (6.0 / spec.in_dim as f32).sqrt();
        let w = (0..spec.in_dim * spec.out_dim)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect();
        Linear {
            spec,
            w,
            b: vec![0.0; spec.out_dim],
        }
    }

    /// Layer shape/activation.
    pub fn spec(&self) -> LayerSpec {
        self.spec
    }

    /// Number of trainable scalars (weights + biases).
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Multiply-accumulate count of one forward evaluation.
    pub fn flops(&self) -> usize {
        2 * self.spec.in_dim * self.spec.out_dim
    }

    #[inline]
    fn forward_into(&self, x: &[f32], pre: &mut [f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.spec.in_dim);
        debug_assert_eq!(out.len(), self.spec.out_dim);
        for o in 0..self.spec.out_dim {
            let row = &self.w[o * self.spec.in_dim..(o + 1) * self.spec.in_dim];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            pre[o] = acc;
            out[o] = self.spec.activation.apply(acc);
        }
    }

    /// Writes the column-major transpose of `w` into `wt`
    /// (`wt[i * out_dim + o] = w[o * in_dim + i]`) — the layout the SIMD
    /// GEMV reads as contiguous output-neuron tiles.
    fn fill_transposed(&self, wt: &mut Vec<f32>) {
        let (iw, ow) = (self.spec.in_dim, self.spec.out_dim);
        wt.resize(iw * ow, 0.0);
        for o in 0..ow {
            for i in 0..iw {
                wt[i * ow + o] = self.w[o * iw + i];
            }
        }
    }

    /// SIMD row GEMV over the transposed weights `wt`: output neurons are
    /// processed in lanes of 8, each accumulating `b[o] + Σ_i w[o,i]·x[i]`
    /// with the same `i`-ascending addition order (and separate mul/add —
    /// no FMA) as [`Linear::forward_into`], so every output bit matches
    /// the scalar kernel. Lanes batch *independent* output neurons; no
    /// cross-lane reduction occurs.
    #[inline]
    fn forward_into_simd(&self, wt: &[f32], x: &[f32], pre: &mut [f32], out: &mut [f32]) {
        const LANES: usize = F32x8::LANES;
        let (iw, ow) = (self.spec.in_dim, self.spec.out_dim);
        debug_assert_eq!(x.len(), iw);
        debug_assert_eq!(wt.len(), iw * ow);
        let full = ow - ow % LANES;
        let mut o0 = 0;
        while o0 < full {
            let mut acc = F32x8::from_slice(&self.b[o0..]);
            for (i, &xi) in x.iter().enumerate() {
                acc += F32x8::from_slice(&wt[i * ow + o0..]) * F32x8::splat(xi);
            }
            acc.write_to(&mut pre[o0..]);
            o0 += LANES;
        }
        for o in full..ow {
            let mut acc = self.b[o];
            for (i, &xi) in x.iter().enumerate() {
                acc += wt[i * ow + o] * xi;
            }
            pre[o] = acc;
        }
        for o in 0..ow {
            out[o] = self.spec.activation.apply(pre[o]);
        }
    }

    /// Fused (lossy-tier) row GEMV body: every `w·x` term is folded into
    /// the accumulator with one `f32::mul_add` rounding instead of two,
    /// and inputs are blocked four at a time so each `pre` element is
    /// loaded/stored once per four terms (the chained per-element fma
    /// sequence `fma(w3,x3, fma(w2,x2, fma(w1,x1, fma(w0,x0, p))))` keeps
    /// `i`-ascending term order; the block boundary depends only on the
    /// layer shape, so results are deterministic). Divergence from
    /// [`Linear::forward_into`] is per-term rounding only — bounded by
    /// the backend's declared tolerance. Written as plain
    /// output-contiguous sweeps over the transposed weights so the AVX2
    /// wrapper autovectorizes them to 256-bit `vfmadd`.
    // CONTRACT: lossy-tier — fused GEMV backing `FastKernels` only.
    #[inline(always)]
    fn forward_into_fused_body(&self, wt: &[f32], x: &[f32], pre: &mut [f32], out: &mut [f32]) {
        let (iw, ow) = (self.spec.in_dim, self.spec.out_dim);
        debug_assert_eq!(x.len(), iw);
        debug_assert_eq!(wt.len(), iw * ow);
        pre[..ow].copy_from_slice(&self.b);
        let full = iw - iw % 4;
        let mut i = 0;
        while i < full {
            let (x0, x1, x2, x3) = (x[i], x[i + 1], x[i + 2], x[i + 3]);
            let r0 = &wt[i * ow..(i + 1) * ow];
            let r1 = &wt[(i + 1) * ow..(i + 2) * ow];
            let r2 = &wt[(i + 2) * ow..(i + 3) * ow];
            let r3 = &wt[(i + 3) * ow..(i + 4) * ow];
            for ((((p, &w0), &w1), &w2), &w3) in
                pre[..ow].iter_mut().zip(r0).zip(r1).zip(r2).zip(r3)
            {
                let mut acc = w0.mul_add(x0, *p);
                acc = w1.mul_add(x1, acc);
                acc = w2.mul_add(x2, acc);
                acc = w3.mul_add(x3, acc);
                *p = acc;
            }
            i += 4;
        }
        while i < iw {
            let xi = x[i];
            let wrow = &wt[i * ow..(i + 1) * ow];
            for (p, w) in pre[..ow].iter_mut().zip(wrow) {
                *p = w.mul_add(xi, *p);
            }
            i += 1;
        }
        for (y, p) in out[..ow].iter_mut().zip(&pre[..ow]) {
            *y = self.spec.activation.apply(*p);
        }
    }

    // CALLER: `forward_into_fused` gates this behind
    // `simd::avx2_fma_available()` runtime detection.
    // SAFETY: only safe slice code inside; the sole obligation is the
    // AVX2+FMA target features, established by the caller's guard.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn forward_into_fused_avx2(
        &self,
        wt: &[f32],
        x: &[f32],
        pre: &mut [f32],
        out: &mut [f32],
    ) {
        self.forward_into_fused_body(wt, x, pre, out);
    }

    /// Fused row GEMV with per-call AVX2/FMA dispatch; bit-identical
    /// results on both arms (`f32::mul_add` is correctly rounded
    /// everywhere), so the specialization is purely speed.
    #[inline]
    fn forward_into_fused(&self, wt: &[f32], x: &[f32], pre: &mut [f32], out: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if simd::avx2_fma_available() {
            // SAFETY: guarded by runtime AVX2+FMA detection.
            unsafe {
                return self.forward_into_fused_avx2(wt, x, pre, out);
            }
        }
        self.forward_into_fused_body(wt, x, pre, out);
    }
}

/// Which arithmetic the shared batched MLP bodies run: the strict scalar
/// reference, the strict lane-batched SIMD path, or the lossy fused (FMA)
/// path with runtime AVX2 dispatch ([`crate::kernels::FastKernels`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GemvMode {
    /// Scalar reference GEMV — the executable specification.
    Scalar,
    /// Lane-batched GEMV, bit-identical to scalar (separate mul/add).
    Simd,
    /// Fused multiply-add GEMV — lossy tier, one rounding per term.
    Fused,
    /// The SIMD arithmetic with disjoint-write ledger recording: every
    /// parallel gradient row/item chunk registers its write range with
    /// the `"checked"` backend's [`crate::kernels::WriteLedger`], which
    /// panics (naming both tasks) on overlap. Numerics are exactly
    /// [`GemvMode::Simd`]'s.
    Checked,
}

impl GemvMode {
    /// The mode's axpy for the backward sweeps.
    #[inline(always)]
    fn axpy(self, y: &mut [f32], a: f32, x: &[f32]) {
        match self {
            GemvMode::Scalar => simd::axpy(false, y, a, x),
            GemvMode::Simd | GemvMode::Checked => simd::axpy(true, y, a, x),
            GemvMode::Fused => simd::axpy_fused(y, a, x),
        }
    }
}

/// Fused parameter-gradient sweep for a block of output rows
/// (`gb_rows.len()` rows starting at `o0`): items are blocked four at a
/// time so each gradient element is loaded/stored once per four fused
/// terms instead of once per term. The chained per-element sequence
/// `fma(x3,d3, fma(x2,d2, fma(x1,d1, fma(x0,d0, g))))` keeps the
/// item-ascending accumulation order (and the bias adds stay plain
/// left-associated sums, bit-identical to the strict path); the block
/// boundary depends only on `n`, never on the row chunking, so results
/// are worker-count invariant.
// CONTRACT: lossy-tier — fused gradient sweep backing `FastKernels` only.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn grad_rows_fused_body(
    x: &[f32],
    dz: &[f32],
    iw: usize,
    ow: usize,
    n: usize,
    o0: usize,
    gw_rows: &mut [f32],
    gb_rows: &mut [f32],
) {
    let rows = gb_rows.len();
    let full = n - n % 4;
    let mut item = 0;
    while item < full {
        let x0 = &x[item * iw..(item + 1) * iw];
        let x1 = &x[(item + 1) * iw..(item + 2) * iw];
        let x2 = &x[(item + 2) * iw..(item + 3) * iw];
        let x3 = &x[(item + 3) * iw..(item + 4) * iw];
        let dz0 = &dz[item * ow..(item + 1) * ow];
        let dz1 = &dz[(item + 1) * ow..(item + 2) * ow];
        let dz2 = &dz[(item + 2) * ow..(item + 3) * ow];
        let dz3 = &dz[(item + 3) * ow..(item + 4) * ow];
        for j in 0..rows {
            let o = o0 + j;
            let (d0, d1, d2, d3) = (dz0[o], dz1[o], dz2[o], dz3[o]);
            gb_rows[j] = gb_rows[j] + d0 + d1 + d2 + d3;
            let grow = &mut gw_rows[j * iw..(j + 1) * iw];
            for ((((g, &a0), &a1), &a2), &a3) in grow.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3) {
                let mut a = a0.mul_add(d0, *g);
                a = a1.mul_add(d1, a);
                a = a2.mul_add(d2, a);
                a = a3.mul_add(d3, a);
                *g = a;
            }
        }
        item += 4;
    }
    while item < n {
        let xr = &x[item * iw..(item + 1) * iw];
        let dzr = &dz[item * ow..(item + 1) * ow];
        for j in 0..rows {
            let d = dzr[o0 + j];
            gb_rows[j] += d;
            let grow = &mut gw_rows[j * iw..(j + 1) * iw];
            for (g, &xk) in grow.iter_mut().zip(xr) {
                *g = xk.mul_add(d, *g);
            }
        }
        item += 1;
    }
}

// CALLER: `grad_rows_fused` gates this behind
// `simd::avx2_fma_available()` runtime detection.
// SAFETY: only safe slice code inside; the sole obligation is the
// AVX2+FMA target features, established by the caller's guard.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn grad_rows_fused_avx2(
    x: &[f32],
    dz: &[f32],
    iw: usize,
    ow: usize,
    n: usize,
    o0: usize,
    gw_rows: &mut [f32],
    gb_rows: &mut [f32],
) {
    grad_rows_fused_body(x, dz, iw, ow, n, o0, gw_rows, gb_rows);
}

/// Whole-sweep AVX2/FMA dispatch for the fused parameter gradients: one
/// feature check per row chunk instead of one per `(item, row)` axpy.
/// Bit-identical on both arms (`f32::mul_add` is correctly rounded
/// everywhere), so the specialization is purely speed.
#[inline]
#[allow(clippy::too_many_arguments)]
fn grad_rows_fused(
    x: &[f32],
    dz: &[f32],
    iw: usize,
    ow: usize,
    n: usize,
    o0: usize,
    gw_rows: &mut [f32],
    gb_rows: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_fma_available() {
        // SAFETY: guarded by runtime AVX2+FMA detection.
        unsafe {
            return grad_rows_fused_avx2(x, dz, iw, ow, n, o0, gw_rows, gb_rows);
        }
    }
    grad_rows_fused_body(x, dz, iw, ow, n, o0, gw_rows, gb_rows);
}

/// Fused input-gradient sweep `dn = Wᵀ dz` for a chunk of items: output
/// rows are blocked four at a time so each `dn` element is
/// loaded/stored once per four fused terms. The chained fma keeps the
/// `o`-ascending term order and the block boundary depends only on
/// `ow`, so results are chunking- and worker-count invariant.
// CONTRACT: lossy-tier — fused input-gradient sweep backing `FastKernels`.
#[inline(always)]
fn input_grad_fused_body(dnc: &mut [f32], dzc: &[f32], w_flat: &[f32], iw: usize, ow: usize) {
    let rows = dnc.len() / iw;
    let full = ow - ow % 4;
    for r in 0..rows {
        let dn = &mut dnc[r * iw..(r + 1) * iw];
        let dzr = &dzc[r * ow..(r + 1) * ow];
        dn.fill(0.0);
        let mut o = 0;
        while o < full {
            let (d0, d1, d2, d3) = (dzr[o], dzr[o + 1], dzr[o + 2], dzr[o + 3]);
            let w0 = &w_flat[o * iw..(o + 1) * iw];
            let w1 = &w_flat[(o + 1) * iw..(o + 2) * iw];
            let w2 = &w_flat[(o + 2) * iw..(o + 3) * iw];
            let w3 = &w_flat[(o + 3) * iw..(o + 4) * iw];
            for ((((y, &a0), &a1), &a2), &a3) in dn.iter_mut().zip(w0).zip(w1).zip(w2).zip(w3) {
                let mut a = a0.mul_add(d0, *y);
                a = a1.mul_add(d1, a);
                a = a2.mul_add(d2, a);
                a = a3.mul_add(d3, a);
                *y = a;
            }
            o += 4;
        }
        while o < ow {
            let d = dzr[o];
            let wr = &w_flat[o * iw..(o + 1) * iw];
            for (y, &w) in dn.iter_mut().zip(wr) {
                *y = w.mul_add(d, *y);
            }
            o += 1;
        }
    }
}

// CALLER: `input_grad_fused` gates this behind
// `simd::avx2_fma_available()` runtime detection.
// SAFETY: only safe slice code inside; the sole obligation is the
// AVX2+FMA target features, established by the caller's guard.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn input_grad_fused_avx2(
    dnc: &mut [f32],
    dzc: &[f32],
    w_flat: &[f32],
    iw: usize,
    ow: usize,
) {
    input_grad_fused_body(dnc, dzc, w_flat, iw, ow);
}

/// Whole-chunk AVX2/FMA dispatch for the fused input gradients: one
/// feature check per item chunk instead of one per `(item, row)` axpy.
/// Bit-identical on both arms, so the specialization is purely speed.
#[inline]
fn input_grad_fused(dnc: &mut [f32], dzc: &[f32], w_flat: &[f32], iw: usize, ow: usize) {
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_fma_available() {
        // SAFETY: guarded by runtime AVX2+FMA detection.
        unsafe {
            return input_grad_fused_avx2(dnc, dzc, w_flat, iw, ow);
        }
    }
    input_grad_fused_body(dnc, dzc, w_flat, iw, ow);
}

/// A multilayer perceptron assembled from [`Linear`] layers.
///
/// # Example
///
/// ```
/// use instant3d_nerf::mlp::{Mlp, MlpConfig};
/// use instant3d_nerf::activation::Activation;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(
///     MlpConfig::new(8, &[16], 4, Activation::Relu, Activation::None),
///     &mut rng,
/// );
/// let mut ws = mlp.workspace();
/// let y = mlp.forward(&[0.1; 8], &mut ws).to_vec();
/// assert_eq!(y.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// Describes an MLP: input width, hidden widths, output width, activations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpConfig {
    /// Input width.
    pub in_dim: usize,
    /// Hidden layer widths, in order.
    pub hidden: Vec<usize>,
    /// Output width.
    pub out_dim: usize,
    /// Activation for hidden layers.
    pub hidden_activation: Activation,
    /// Activation for the output layer.
    pub output_activation: Activation,
}

impl MlpConfig {
    /// Convenience constructor.
    pub fn new(
        in_dim: usize,
        hidden: &[usize],
        out_dim: usize,
        hidden_activation: Activation,
        output_activation: Activation,
    ) -> Self {
        MlpConfig {
            in_dim,
            hidden: hidden.to_vec(),
            out_dim,
            hidden_activation,
            output_activation,
        }
    }

    /// The layer specs this config expands to.
    pub fn layer_specs(&self) -> Vec<LayerSpec> {
        let mut dims = Vec::with_capacity(self.hidden.len() + 2);
        dims.push(self.in_dim);
        dims.extend_from_slice(&self.hidden);
        dims.push(self.out_dim);
        (0..dims.len() - 1)
            .map(|i| LayerSpec {
                in_dim: dims[i],
                out_dim: dims[i + 1],
                activation: if i == dims.len() - 2 {
                    self.output_activation
                } else {
                    self.hidden_activation
                },
            })
            .collect()
    }
}

/// Reusable forward-pass scratch (per-layer activations), so per-point
/// inference performs no allocation.
#[derive(Debug, Clone)]
pub struct MlpWorkspace {
    /// acts[0] is the input copy; acts[i+1] is layer i's activated output.
    acts: Vec<Vec<f32>>,
    /// pre[i] is layer i's pre-activation.
    pre: Vec<Vec<f32>>,
    /// Backward scratch: gradient flowing between layers.
    d_cur: Vec<f32>,
    d_next: Vec<f32>,
}

/// Reusable SoA scratch for batched forward/backward passes: row-major
/// activations for every item of a batch, retained between the forward and
/// backward pass so the backward never re-runs the forward (the scalar
/// training path re-forwards per point to rebuild activations).
///
/// All buffers grow once to the high-water batch size and are reused —
/// zero steady-state allocation.
#[derive(Debug, Clone)]
pub struct MlpBatchWorkspace {
    /// Items currently stored (set by the last `forward_batch`).
    n: usize,
    /// acts[0] is the input copy (`n × in_dim`); acts[i+1] is layer i's
    /// activated output (`n × out_dim_i`), row-major.
    acts: Vec<Vec<f32>>,
    /// pre[i] is layer i's pre-activation (`n × out_dim_i`), row-major.
    pre: Vec<Vec<f32>>,
    /// Backward scratch (`n × width` of the layer being processed).
    d_cur: Vec<f32>,
    d_next: Vec<f32>,
    /// Column-major (transposed) weight scratch per layer, rebuilt by each
    /// SIMD forward pass (weights change between optimizer steps). Lets the
    /// lane-batched GEMV read contiguous output-neuron tiles.
    wt: Vec<Vec<f32>>,
}

impl MlpBatchWorkspace {
    /// Items stored by the most recent `forward_batch`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True before any batch has been run.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Per-layer gradient buffers, shape-matched to an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpGradients {
    /// (d_weights, d_bias) per layer.
    pub layers: Vec<(Vec<f32>, Vec<f32>)>,
    /// Number of accumulated samples since last reset.
    pub count: usize,
}

impl MlpGradients {
    /// Resets all gradients to zero.
    pub fn zero(&mut self) {
        for (w, b) in &mut self.layers {
            w.fill(0.0);
            b.fill(0.0);
        }
        self.count = 0;
    }

    /// Scales every gradient by `s`.
    pub fn scale(&mut self, s: f32) {
        for (w, b) in &mut self.layers {
            for v in w.iter_mut().chain(b.iter_mut()) {
                *v *= s;
            }
        }
    }
}

impl Mlp {
    /// Builds an MLP from a config with He-uniform initialisation.
    ///
    /// # Panics
    ///
    /// Panics if any layer dimension is zero.
    pub fn new<R: Rng + ?Sized>(cfg: MlpConfig, rng: &mut R) -> Self {
        let specs = cfg.layer_specs();
        assert!(!specs.is_empty());
        for s in &specs {
            assert!(s.in_dim > 0 && s.out_dim > 0, "zero-width layer");
        }
        Mlp {
            layers: specs.into_iter().map(|s| Linear::new(s, rng)).collect(),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].spec.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        // PANICS: `Mlp::new` asserts the spec list is non-empty.
        self.layers.last().unwrap().spec.out_dim
    }

    /// The layers, in forward order.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Total trainable scalars.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// Multiply-accumulate count of one forward pass (one input point).
    pub fn flops(&self) -> usize {
        self.layers.iter().map(Linear::flops).sum()
    }

    /// Allocates a workspace sized for this network.
    pub fn workspace(&self) -> MlpWorkspace {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(vec![0.0; self.in_dim()]);
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut widest = self.in_dim();
        for l in &self.layers {
            acts.push(vec![0.0; l.spec.out_dim]);
            pre.push(vec![0.0; l.spec.out_dim]);
            widest = widest.max(l.spec.out_dim).max(l.spec.in_dim);
        }
        MlpWorkspace {
            acts,
            pre,
            d_cur: vec![0.0; widest],
            d_next: vec![0.0; widest],
        }
    }

    /// Allocates zeroed gradient buffers shaped like this network.
    pub fn zero_grads(&self) -> MlpGradients {
        MlpGradients {
            layers: self
                .layers
                .iter()
                .map(|l| (vec![0.0; l.w.len()], vec![0.0; l.b.len()]))
                .collect(),
            count: 0,
        }
    }

    /// Forward pass; returns the output slice living inside `ws`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.in_dim()`.
    pub fn forward<'w>(&self, input: &[f32], ws: &'w mut MlpWorkspace) -> &'w [f32] {
        assert_eq!(input.len(), self.in_dim(), "input width mismatch");
        ws.acts[0].copy_from_slice(input);
        for (i, layer) in self.layers.iter().enumerate() {
            let (head, tail) = ws.acts.split_at_mut(i + 1);
            layer.forward_into(&head[i], &mut ws.pre[i], &mut tail[0]);
        }
        // PANICS: `acts` holds `layers + 1` buffers and `Mlp::new`
        // asserts at least one layer.
        ws.acts.last().unwrap()
    }

    /// Backward pass for the most recent [`Mlp::forward`] call on `ws`.
    ///
    /// Accumulates parameter gradients into `grads` and writes the gradient
    /// w.r.t. the network input into `d_input` (pass an empty slice to skip).
    ///
    /// # Panics
    ///
    /// Panics if `d_output.len() != self.out_dim()` or a non-empty `d_input`
    /// has the wrong width.
    pub fn backward(
        &self,
        d_output: &[f32],
        ws: &mut MlpWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    ) {
        assert_eq!(
            d_output.len(),
            self.out_dim(),
            "output gradient width mismatch"
        );
        if !d_input.is_empty() {
            assert_eq!(
                d_input.len(),
                self.in_dim(),
                "input gradient width mismatch"
            );
        }
        ws.d_cur[..d_output.len()].copy_from_slice(d_output);
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let spec = layer.spec;
            let x = &ws.acts[i]; // layer input
            let y = &ws.acts[i + 1]; // activated output
            let pre = &ws.pre[i];
            let (gw, gb) = &mut grads.layers[i];
            // Backprop through activation: dz = dy * act'(pre)
            for o in 0..spec.out_dim {
                ws.d_cur[o] *= spec.activation.derivative(pre[o], y[o]);
            }
            // Parameter gradients and input gradient.
            ws.d_next[..spec.in_dim].fill(0.0);
            for o in 0..spec.out_dim {
                let dz = ws.d_cur[o];
                gb[o] += dz;
                let row = &layer.w[o * spec.in_dim..(o + 1) * spec.in_dim];
                let grow = &mut gw[o * spec.in_dim..(o + 1) * spec.in_dim];
                for i_in in 0..spec.in_dim {
                    grow[i_in] += dz * x[i_in];
                    ws.d_next[i_in] += dz * row[i_in];
                }
            }
            std::mem::swap(&mut ws.d_cur, &mut ws.d_next);
        }
        if !d_input.is_empty() {
            d_input.copy_from_slice(&ws.d_cur[..self.in_dim()]);
        }
        grads.count += 1;
    }

    // ------------------------------------------------------------------
    // Batched (SoA) passes
    // ------------------------------------------------------------------

    /// Allocates a batch workspace; buffers grow lazily to the high-water
    /// batch size, so `capacity` is only a pre-sizing hint.
    pub fn batch_workspace(&self, capacity: usize) -> MlpBatchWorkspace {
        let mut ws = MlpBatchWorkspace {
            n: 0,
            acts: vec![Vec::new(); self.layers.len() + 1],
            pre: vec![Vec::new(); self.layers.len()],
            d_cur: Vec::new(),
            d_next: Vec::new(),
            wt: vec![Vec::new(); self.layers.len()],
        };
        self.reserve_batch(&mut ws, capacity);
        ws
    }

    fn widest(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.spec.in_dim.max(l.spec.out_dim))
            .max()
            // PANICS: `Mlp::new` asserts the spec list is non-empty.
            .unwrap()
    }

    fn reserve_batch(&self, ws: &mut MlpBatchWorkspace, n: usize) {
        ws.acts[0].resize(n * self.in_dim(), 0.0);
        for (i, l) in self.layers.iter().enumerate() {
            ws.acts[i + 1].resize(n * l.spec.out_dim, 0.0);
            ws.pre[i].resize(n * l.spec.out_dim, 0.0);
        }
        let widest = self.widest();
        ws.d_cur.resize(n * widest, 0.0);
        ws.d_next.resize(n * widest, 0.0);
    }

    /// Items per parallel chunk, or `None` when the batch is too small for
    /// parallelism to pay off.
    fn par_item_chunk(n: usize, work_per_item: usize) -> Option<usize> {
        let threads = rayon::current_num_threads();
        if threads <= 1 || n.saturating_mul(work_per_item) < (1 << 15) || n < 64 {
            return None;
        }
        Some(n.div_ceil(threads * 4).max(16))
    }

    /// The declared [`WritePlan`](crate::kernels::WritePlan)s of
    /// [`Mlp::forward_batch_impl`]'s per-layer parallel sweep: the
    /// post-activation (`y`) and pre-activation (`pre`) buffers are both
    /// written in item chunks of `out_dim` elements — verified disjoint
    /// and gap-free for all shapes by the conformance prover.
    pub fn forward_write_plans() -> [crate::kernels::WritePlan; 2] {
        [
            crate::kernels::WritePlan::chunked(
                concat!(file!(), ":", line!(), " Mlp::forward_batch_impl"),
                "layer activations (y)",
                "items",
                "chunk",
                Some("out_dim"),
            ),
            crate::kernels::WritePlan::chunked(
                concat!(file!(), ":", line!(), " Mlp::forward_batch_impl"),
                "layer pre-activations (pre)",
                "items",
                "chunk",
                Some("out_dim"),
            ),
        ]
    }

    /// The declared write plans of [`Mlp::backward_batch_impl`]'s three
    /// per-layer parallel sweeps: the in-place `dz` activation-derivative
    /// sweep (item chunks × `out_dim`), the parameter-gradient sweep
    /// (output-row chunks: `in_dim` weight elements and one bias element
    /// per row), and the input-gradient sweep (item chunks × `in_dim`).
    pub fn backward_write_plans() -> [crate::kernels::WritePlan; 4] {
        [
            crate::kernels::WritePlan::chunked(
                concat!(file!(), ":", line!(), " Mlp::backward_batch_impl"),
                "dz activation-derivative sweep (d_cur)",
                "items",
                "chunk",
                Some("out_dim"),
            ),
            crate::kernels::WritePlan::chunked(
                concat!(file!(), ":", line!(), " Mlp::backward_batch_impl"),
                "weight gradients (gw)",
                "rows",
                "row_chunk",
                Some("in_dim"),
            ),
            crate::kernels::WritePlan::chunked(
                concat!(file!(), ":", line!(), " Mlp::backward_batch_impl"),
                "bias gradients (gb)",
                "rows",
                "row_chunk",
                None,
            ),
            crate::kernels::WritePlan::chunked(
                concat!(file!(), ":", line!(), " Mlp::backward_batch_impl"),
                "input gradients (d_next)",
                "items",
                "chunk",
                Some("in_dim"),
            ),
        ]
    }

    /// Batched forward pass over `n = inputs.len() / in_dim` row-major
    /// items; returns the `n × out_dim` output slice living inside `ws`.
    ///
    /// Per-item arithmetic is identical to [`Mlp::forward`], and all
    /// parallel writes are disjoint rows, so results are bit-identical to
    /// the scalar path for any worker count. Activations stay in `ws` for
    /// [`Mlp::backward_batch`] — no re-forward needed.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a multiple of `self.in_dim()`.
    pub fn forward_batch<'w>(&self, inputs: &[f32], ws: &'w mut MlpBatchWorkspace) -> &'w [f32] {
        self.forward_batch_impl(GemvMode::Scalar, inputs, ws)
    }

    /// [`Mlp::forward_batch`] with an explicit kernel backend
    /// ([`crate::kernels`]); outputs are bit-identical to the scalar
    /// backend for any batch size and worker count.
    pub fn forward_batch_with<'w>(
        &self,
        backend: &BackendHandle,
        inputs: &[f32],
        ws: &'w mut MlpBatchWorkspace,
    ) -> &'w [f32] {
        backend.mlp_forward_batch(self, inputs, ws)
    }

    /// The shared body of the built-in backends' batched forward. The SIMD
    /// and fused modes run their row GEMVs over per-layer transposed
    /// weights (rebuilt each call — weights change between optimizer
    /// steps).
    pub(crate) fn forward_batch_impl<'w>(
        &self,
        mode: GemvMode,
        inputs: &[f32],
        ws: &'w mut MlpBatchWorkspace,
    ) -> &'w [f32] {
        let iw = self.in_dim();
        assert_eq!(inputs.len() % iw, 0, "input batch width mismatch");
        let n = inputs.len() / iw;
        ws.n = n;
        self.reserve_batch(ws, n);
        ws.acts[0][..n * iw].copy_from_slice(inputs);
        for (i, layer) in self.layers.iter().enumerate() {
            let spec = layer.spec;
            if mode != GemvMode::Scalar {
                layer.fill_transposed(&mut ws.wt[i]);
            }
            let wt: &[f32] = &ws.wt[i];
            let (head, tail) = ws.acts.split_at_mut(i + 1);
            let x = &head[i][..n * spec.in_dim];
            let y = &mut tail[0][..n * spec.out_dim];
            let pre = &mut ws.pre[i][..n * spec.out_dim];
            let chunk_opt = Self::par_item_chunk(n, layer.flops());
            // Checked mode shadow-records every chunk's y/pre write range
            // and registers the declared write plan (instantiated with
            // the chunk the branch below actually uses), so the sweep is
            // held to the statically proven decomposition.
            let fwd_scope = (mode == GemvMode::Checked).then(|| {
                crate::kernels::WriteLedger::global()
                    .open_scope(format!("mlp layer {i} forward sweep"))
            });
            let _fwd_plans = (mode == GemvMode::Checked).then(|| {
                let shape = [
                    ("items", n as i128),
                    ("chunk", chunk_opt.unwrap_or(n.max(1)) as i128),
                    ("out_dim", spec.out_dim as i128),
                ];
                let [y_plan, pre_plan] = Self::forward_write_plans();
                let ledger = crate::kernels::WriteLedger::global();
                (
                    ledger.expect_plan(&y_plan.instantiate(&shape, &[]), y.as_ptr()),
                    ledger.expect_plan(&pre_plan.instantiate(&shape, &[]), pre.as_ptr()),
                )
            });
            let run_rows = |xc: &[f32], prec: &mut [f32], yc: &mut [f32]| {
                if let Some(scope) = &fwd_scope {
                    let record = |what: &str, s: &[f32]| {
                        let start = s.as_ptr() as usize;
                        scope.record(
                            format!(
                                "layer {i} forward {what} chunk ({} items @0x{start:x})",
                                s.len() / spec.out_dim
                            ),
                            (start, start + std::mem::size_of_val(s)),
                        );
                    };
                    record("y", yc);
                    record("pre", prec);
                }
                let rows = yc.len() / spec.out_dim;
                for r in 0..rows {
                    let xr = &xc[r * spec.in_dim..(r + 1) * spec.in_dim];
                    let prer = &mut prec[r * spec.out_dim..(r + 1) * spec.out_dim];
                    let yr = &mut yc[r * spec.out_dim..(r + 1) * spec.out_dim];
                    match mode {
                        GemvMode::Scalar => layer.forward_into(xr, prer, yr),
                        GemvMode::Simd | GemvMode::Checked => {
                            layer.forward_into_simd(wt, xr, prer, yr)
                        }
                        GemvMode::Fused => layer.forward_into_fused(wt, xr, prer, yr),
                    }
                }
            };
            match chunk_opt {
                Some(chunk) => {
                    y.par_chunks_mut(chunk * spec.out_dim)
                        .zip(pre.par_chunks_mut(chunk * spec.out_dim))
                        .zip(x.par_chunks(chunk * spec.in_dim))
                        .for_each(|((yc, prec), xc)| run_rows(xc, prec, yc));
                }
                None => run_rows(x, pre, y),
            }
        }
        // PANICS: `acts` holds `layers + 1` buffers and `Mlp::new`
        // asserts at least one layer.
        &ws.acts.last().unwrap()[..n * self.out_dim()]
    }

    /// Batched backward pass for the most recent [`Mlp::forward_batch`] on
    /// `ws` (`d_output` is `n × out_dim`, row-major).
    ///
    /// Accumulates parameter gradients into `grads` (per-parameter
    /// accumulation runs in item order, matching `n` scalar
    /// [`Mlp::backward`] calls bit-for-bit) and writes the input gradients
    /// into `d_input` (`n × in_dim`; pass an empty slice to skip).
    /// Parallelism: items for the activation/input-gradient sweeps, output
    /// *rows* for the parameter-gradient sweep — every write is disjoint,
    /// so results do not depend on the worker count.
    ///
    /// # Panics
    ///
    /// Panics if buffer widths mismatch the workspace batch.
    pub fn backward_batch(
        &self,
        d_output: &[f32],
        ws: &mut MlpBatchWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    ) {
        self.backward_batch_impl(GemvMode::Scalar, d_output, ws, grads, d_input);
    }

    /// [`Mlp::backward_batch`] with an explicit kernel backend
    /// ([`crate::kernels`]). Strict-tier backends produce gradients
    /// bit-identical to the scalar backend (and to `n` scalar
    /// [`Mlp::backward`] calls); lossy-tier backends stay within their
    /// declared tolerance. Either way the result is the same for any
    /// worker count.
    pub fn backward_batch_with(
        &self,
        backend: &BackendHandle,
        d_output: &[f32],
        ws: &mut MlpBatchWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    ) {
        backend.mlp_backward_batch(self, d_output, ws, grads, d_input);
    }

    /// The shared body of the built-in backends' batched backward. The
    /// SIMD mode vectorizes the parameter-gradient and input-gradient
    /// inner sweeps ([`simd::axpy`]) across independent parameters; the
    /// fused mode runs register-blocked fma sweeps ([`grad_rows_fused`],
    /// [`input_grad_fused`] — one rounding per term, four terms per
    /// load/store). Accumulation per parameter stays in item order on
    /// every mode.
    pub(crate) fn backward_batch_impl(
        &self,
        mode: GemvMode,
        d_output: &[f32],
        ws: &mut MlpBatchWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    ) {
        let n = ws.n;
        let ow_last = self.out_dim();
        assert_eq!(
            d_output.len(),
            n * ow_last,
            "output gradient batch mismatch"
        );
        if !d_input.is_empty() {
            assert_eq!(
                d_input.len(),
                n * self.in_dim(),
                "input gradient batch mismatch"
            );
        }
        let MlpBatchWorkspace {
            acts,
            pre,
            d_cur,
            d_next,
            ..
        } = ws;
        d_cur[..n * ow_last].copy_from_slice(d_output);
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let spec = layer.spec;
            let (ow, iw) = (spec.out_dim, spec.in_dim);
            let x = &acts[i][..n * iw];
            let y = &acts[i + 1][..n * ow];
            let pre_l = &pre[i][..n * ow];
            // dz = dy ⊙ act'(pre), in place over the n×ow prefix. The
            // checked-mode scope/plan guards live in this block: the same
            // allocation is rewritten under a different decomposition
            // next layer (after the d_cur/d_next swap), so the evidence
            // and the plan expectation must retire with the sweep.
            {
                let chunk_opt = Self::par_item_chunk(n, ow);
                let dz_scope = (mode == GemvMode::Checked).then(|| {
                    crate::kernels::WriteLedger::global()
                        .open_scope(format!("mlp layer {i} dz sweep"))
                });
                let _dz_plan = (mode == GemvMode::Checked).then(|| {
                    let [dz_plan, _, _, _] = Self::backward_write_plans();
                    crate::kernels::WriteLedger::global().expect_plan(
                        &dz_plan.instantiate(
                            &[
                                ("items", n as i128),
                                ("chunk", chunk_opt.unwrap_or(n.max(1)) as i128),
                                ("out_dim", ow as i128),
                            ],
                            &[],
                        ),
                        d_cur.as_ptr(),
                    )
                });
                match chunk_opt {
                    Some(chunk) => {
                        d_cur[..n * ow]
                            .par_chunks_mut(chunk * ow)
                            .zip(pre_l.par_chunks(chunk * ow))
                            .zip(y.par_chunks(chunk * ow))
                            .for_each(|((dc, prec), yc)| {
                                if let Some(scope) = &dz_scope {
                                    let start = dc.as_ptr() as usize;
                                    scope.record(
                                        format!(
                                            "layer {i} dz chunk ({} items @0x{start:x})",
                                            dc.len() / ow
                                        ),
                                        (start, start + std::mem::size_of_val(&dc[..])),
                                    );
                                }
                                for ((d, p), a) in dc.iter_mut().zip(prec).zip(yc) {
                                    *d *= spec.activation.derivative(*p, *a);
                                }
                            });
                    }
                    None => {
                        if let Some(scope) = &dz_scope {
                            let s = &d_cur[..n * ow];
                            let start = s.as_ptr() as usize;
                            scope.record(
                                format!("layer {i} dz whole batch ({n} items)"),
                                (start, start + std::mem::size_of_val(s)),
                            );
                        }
                        for ((d, p), a) in d_cur[..n * ow].iter_mut().zip(pre_l).zip(y) {
                            *d *= spec.activation.derivative(*p, *a);
                        }
                    }
                }
            }
            let dz = &d_cur[..n * ow];
            // Parameter gradients, parallel over disjoint output rows.
            // Item-outer iteration keeps each input row hot across every
            // output row; per-parameter accumulation stays in item order,
            // so results match the scalar path bit-for-bit.
            let (gw, gb) = &mut grads.layers[i];
            let row_chunk = if Self::par_item_chunk(n, iw * ow).is_some() {
                ow.div_ceil(rayon::current_num_threads().max(1) * 2).max(1)
            } else {
                ow
            };
            // Checked mode shadow-records every row-chunk task's write
            // range; overlap between two chunks of this sweep panics with
            // both task identities. The declared row-chunk plans hold the
            // recorded ranges to the statically proven decomposition.
            let grad_scope = (mode == GemvMode::Checked).then(|| {
                crate::kernels::WriteLedger::global()
                    .open_scope(format!("mlp layer {i} param-grad sweep"))
            });
            let _grad_plans = (mode == GemvMode::Checked).then(|| {
                let [_, gw_plan, gb_plan, _] = Self::backward_write_plans();
                let shape = [
                    ("rows", ow as i128),
                    ("row_chunk", row_chunk.max(1) as i128),
                    ("in_dim", iw as i128),
                ];
                let ledger = crate::kernels::WriteLedger::global();
                (
                    ledger.expect_plan(&gw_plan.instantiate(&shape, &[]), gw.as_ptr()),
                    ledger.expect_plan(&gb_plan.instantiate(&shape[..2], &[]), gb.as_ptr()),
                )
            });
            let accumulate_rows = |o0: usize, gw_rows: &mut [f32], gb_rows: &mut [f32]| {
                if let Some(scope) = &grad_scope {
                    let record = |what: &str, s: &[f32]| {
                        let start = s.as_ptr() as usize;
                        scope.record(
                            format!("layer {i} {what} rows {o0}..{}", o0 + gb_rows.len()),
                            (start, start + std::mem::size_of_val(s)),
                        );
                    };
                    record("weight-grad", gw_rows);
                    record("bias-grad", gb_rows);
                }
                if mode == GemvMode::Fused {
                    // Item-blocked fused sweep with one AVX2 dispatch per
                    // row chunk (lossy tier; item order preserved).
                    return grad_rows_fused(x, dz, iw, ow, n, o0, gw_rows, gb_rows);
                }
                let rows = gb_rows.len();
                for item in 0..n {
                    let xr = &x[item * iw..(item + 1) * iw];
                    let dzr = &dz[item * ow..(item + 1) * ow];
                    for j in 0..rows {
                        let d = dzr[o0 + j];
                        gb_rows[j] += d;
                        let grow = &mut gw_rows[j * iw..(j + 1) * iw];
                        mode.axpy(grow, d, xr);
                    }
                }
            };
            if row_chunk >= ow {
                accumulate_rows(0, gw, gb);
            } else {
                gw.par_chunks_mut(row_chunk * iw)
                    .zip(gb.par_chunks_mut(row_chunk))
                    .enumerate()
                    .for_each(|(t, (gwc, gbc))| accumulate_rows(t * row_chunk, gwc, gbc));
            }
            // Input gradient d_next = Wᵀ dz, parallel over items. The
            // first layer's input gradient is dead when the caller passes
            // an empty `d_input` — skip it entirely.
            if i == 0 && d_input.is_empty() {
                break;
            }
            let w_flat = &layer.w;
            // Checked mode records the input-gradient item chunks too —
            // the other parallel write path of the backward.
            let input_scope = (mode == GemvMode::Checked).then(|| {
                crate::kernels::WriteLedger::global()
                    .open_scope(format!("mlp layer {i} input-grad sweep"))
            });
            let _input_plan = (mode == GemvMode::Checked).then(|| {
                let [_, _, _, d_next_plan] = Self::backward_write_plans();
                crate::kernels::WriteLedger::global().expect_plan(
                    &d_next_plan.instantiate(
                        &[
                            ("items", n as i128),
                            (
                                "chunk",
                                Self::par_item_chunk(n, iw * ow).unwrap_or(n.max(1)) as i128,
                            ),
                            ("in_dim", iw as i128),
                        ],
                        &[],
                    ),
                    d_next.as_ptr(),
                )
            });
            match Self::par_item_chunk(n, iw * ow) {
                Some(chunk) => {
                    d_next[..n * iw]
                        .par_chunks_mut(chunk * iw)
                        .zip(dz.par_chunks(chunk * ow))
                        .for_each(|(dnc, dzc)| {
                            if let Some(scope) = &input_scope {
                                let start = dnc.as_ptr() as usize;
                                scope.record(
                                    format!(
                                        "layer {i} input-grad chunk ({} items @0x{start:x})",
                                        dnc.len() / iw
                                    ),
                                    (start, start + std::mem::size_of_val(&dnc[..])),
                                );
                            }
                            if mode == GemvMode::Fused {
                                // Row-blocked fused sweep, one AVX2
                                // dispatch per item chunk (lossy tier).
                                return input_grad_fused(dnc, dzc, w_flat, iw, ow);
                            }
                            let rows = dnc.len() / iw;
                            for r in 0..rows {
                                let dn = &mut dnc[r * iw..(r + 1) * iw];
                                dn.fill(0.0);
                                for o in 0..ow {
                                    let d = dzc[r * ow + o];
                                    let wr = &w_flat[o * iw..(o + 1) * iw];
                                    mode.axpy(dn, d, wr);
                                }
                            }
                        });
                }
                None if mode == GemvMode::Fused => {
                    input_grad_fused(&mut d_next[..n * iw], dz, w_flat, iw, ow);
                }
                None => {
                    for r in 0..n {
                        let dn = &mut d_next[r * iw..(r + 1) * iw];
                        dn.fill(0.0);
                        for o in 0..ow {
                            let d = dz[r * ow + o];
                            let wr = &w_flat[o * iw..(o + 1) * iw];
                            mode.axpy(dn, d, wr);
                        }
                    }
                }
            }
            std::mem::swap(d_cur, d_next);
        }
        if !d_input.is_empty() {
            d_input.copy_from_slice(&d_cur[..n * self.in_dim()]);
        }
        grads.count += n;
    }

    /// Visits all parameters as `(params, grads)` slice pairs, in a fixed
    /// order — the optimizer contract.
    pub fn for_each_param_mut<F: FnMut(&mut [f32], &[f32])>(
        &mut self,
        grads: &MlpGradients,
        mut f: F,
    ) {
        for (layer, (gw, gb)) in self.layers.iter_mut().zip(&grads.layers) {
            f(&mut layer.w, gw);
            f(&mut layer.b, gb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_mlp(out_act: Activation) -> Mlp {
        let mut rng = StdRng::seed_from_u64(42);
        Mlp::new(
            MlpConfig::new(4, &[8, 8], 3, Activation::Relu, out_act),
            &mut rng,
        )
    }

    #[test]
    fn shapes_and_param_counts() {
        let m = tiny_mlp(Activation::None);
        assert_eq!(m.in_dim(), 4);
        assert_eq!(m.out_dim(), 3);
        // (4*8+8) + (8*8+8) + (8*3+3) = 40 + 72 + 27
        assert_eq!(m.num_params(), 139);
        assert_eq!(m.flops(), 2 * (4 * 8 + 8 * 8 + 8 * 3));
    }

    #[test]
    fn forward_is_deterministic() {
        let m = tiny_mlp(Activation::Sigmoid);
        let mut ws = m.workspace();
        let x = [0.1, -0.2, 0.3, 0.4];
        let y1 = m.forward(&x, &mut ws).to_vec();
        let y2 = m.forward(&x, &mut ws).to_vec();
        assert_eq!(y1, y2);
        assert!(y1.iter().all(|v| (0.0..=1.0).contains(v)), "sigmoid range");
    }

    #[test]
    fn parameter_gradients_match_finite_difference() {
        let mut m = tiny_mlp(Activation::None);
        let x = [0.3, -0.1, 0.7, 0.2];
        let d_out = [1.0, -0.5, 0.25];
        let mut ws = m.workspace();
        let mut grads = m.zero_grads();
        m.forward(&x, &mut ws);
        m.backward(&d_out, &mut ws, &mut grads, &mut []);

        // Scalar loss L = dot(output, d_out).
        let loss = |m: &Mlp, ws: &mut MlpWorkspace| -> f32 {
            m.forward(&x, ws)
                .iter()
                .zip(&d_out)
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-3;
        // Check a sample of weights in each layer.
        for li in 0..m.layers.len() {
            for wi in [0usize, 3, 7] {
                if wi >= m.layers[li].w.len() {
                    continue;
                }
                let orig = m.layers[li].w[wi];
                m.layers[li].w[wi] = orig + eps;
                let lp = loss(&m, &mut ws);
                m.layers[li].w[wi] = orig - eps;
                let lm = loss(&m, &mut ws);
                m.layers[li].w[wi] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                let an = grads.layers[li].0[wi];
                assert!(
                    (fd - an).abs() < 1e-2 * (1.0 + an.abs()),
                    "layer {li} w[{wi}]: fd {fd} vs {an}"
                );
            }
            // And one bias each.
            let orig = m.layers[li].b[0];
            m.layers[li].b[0] = orig + eps;
            let lp = loss(&m, &mut ws);
            m.layers[li].b[0] = orig - eps;
            let lm = loss(&m, &mut ws);
            m.layers[li].b[0] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.layers[li].1[0];
            assert!((fd - an).abs() < 1e-2 * (1.0 + an.abs()), "layer {li} bias");
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let m = tiny_mlp(Activation::Sigmoid);
        let x = [0.3, -0.1, 0.7, 0.2];
        let d_out = [0.5, 1.0, -1.0];
        let mut ws = m.workspace();
        let mut grads = m.zero_grads();
        let mut d_in = vec![0.0; 4];
        m.forward(&x, &mut ws);
        m.backward(&d_out, &mut ws, &mut grads, &mut d_in);

        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x;
            xp[i] += eps;
            let lp: f32 = m
                .forward(&xp, &mut ws)
                .iter()
                .zip(&d_out)
                .map(|(a, b)| a * b)
                .sum();
            let mut xm = x;
            xm[i] -= eps;
            let lm: f32 = m
                .forward(&xm, &mut ws)
                .iter()
                .zip(&d_out)
                .map(|(a, b)| a * b)
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - d_in[i]).abs() < 1e-2 * (1.0 + d_in[i].abs()),
                "input {i}: fd {fd} vs {}",
                d_in[i]
            );
        }
    }

    #[test]
    fn gradient_accumulation_sums_over_calls() {
        let m = tiny_mlp(Activation::None);
        let mut ws = m.workspace();
        let mut g1 = m.zero_grads();
        let x = [0.5, 0.5, -0.5, 0.1];
        let d = [1.0, 1.0, 1.0];
        m.forward(&x, &mut ws);
        m.backward(&d, &mut ws, &mut g1, &mut []);
        let single = g1.layers[0].0[0];
        m.forward(&x, &mut ws);
        m.backward(&d, &mut ws, &mut g1, &mut []);
        assert!((g1.layers[0].0[0] - 2.0 * single).abs() < 1e-6);
        assert_eq!(g1.count, 2);
        g1.scale(0.5);
        assert!((g1.layers[0].0[0] - single).abs() < 1e-6);
        g1.zero();
        assert_eq!(g1.layers[0].0[0], 0.0);
    }

    #[test]
    #[should_panic]
    fn wrong_input_width_panics() {
        let m = tiny_mlp(Activation::None);
        let mut ws = m.workspace();
        let _ = m.forward(&[0.0; 3], &mut ws);
    }

    #[test]
    fn single_layer_identity_activation_is_affine() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(
            MlpConfig::new(2, &[], 2, Activation::Relu, Activation::None),
            &mut rng,
        );
        let mut ws = m.workspace();
        // Affinity: f(a) + f(b) - f(0) == f(a + b).
        let f = |m: &Mlp, ws: &mut MlpWorkspace, x: [f32; 2]| m.forward(&x, ws).to_vec();
        let fa = f(&m, &mut ws, [1.0, 0.0]);
        let fb = f(&m, &mut ws, [0.0, 1.0]);
        let f0 = f(&m, &mut ws, [0.0, 0.0]);
        let fab = f(&m, &mut ws, [1.0, 1.0]);
        for k in 0..2 {
            assert!((fa[k] + fb[k] - f0[k] - fab[k]).abs() < 1e-5);
        }
    }
}
