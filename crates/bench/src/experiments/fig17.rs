//! Fig. 17 — the speedup decomposition over Instant-NGP on Xavier NX:
//! algorithm × (FRM + BUM) × multi-core-fusion scheduling ≈ 45× total.

use crate::table::Table;
use instant3d_accel::Accelerator;
use instant3d_core::TrainConfig;
use instant3d_devices::{perf::ITERS_TO_PSNR26, DeviceModel};

/// Prints the staged-technique waterfall and the cumulative speedup over
/// the Xavier NX baseline.
pub fn run(_quick: bool) {
    crate::banner(
        "Fig. 17",
        "Speedup decomposition over Instant-NGP on Xavier NX (log-scale waterfall)",
    );
    let accel = Accelerator::default();
    let stages = accel.speedup_waterfall(ITERS_TO_PSNR26);
    let xavier = DeviceModel::xavier_nx().runtime(&crate::workloads::paper_workload(
        &TrainConfig::instant_ngp(),
        ITERS_TO_PSNR26,
    ));

    let mut t = Table::new(&[
        "stage",
        "runtime (s)",
        "x vs prev stage",
        "cumulative x vs Xavier NX",
        "bottleneck",
    ]);
    let mut prev = stages[0].1.seconds_total;
    for (name, r) in &stages {
        t.row_owned(vec![
            name.clone(),
            format!("{:.2}", r.seconds_total),
            format!("{:.2}", prev / r.seconds_total),
            format!("{:.1}", xavier / r.seconds_total),
            r.bottleneck().to_string(),
        ]);
        prev = r.seconds_total;
    }
    t.print();

    let total = xavier / stages[3].1.seconds_total;
    println!(
        "\nXavier NX Instant-NGP baseline: {xavier:.1} s; full Instant-3D: {:.2} s\n\
         total speedup: {total:.1}x (paper: 45x = 2.7 x 3.1 x 5.3).\n\
         Note: our stage attribution concentrates more of the gain in the fusion\n\
         stage (SRAM residency flips there); the cumulative product matches.",
        stages[3].1.seconds_total
    );
}
