//! The Adam optimizer, as used by Instant-NGP for both the hash grids and
//! the MLP heads.
//!
//! Instant-NGP uses β₁ = 0.9, β₂ = 0.99 and a very small ε (1e-15) so tiny
//! grid gradients still move; those are the defaults here.

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator stabiliser.
    pub eps: f32,
    /// L2 weight decay (0 to disable).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.99,
            eps: 1e-15,
            weight_decay: 0.0,
        }
    }
}

impl AdamConfig {
    /// Instant-NGP's grid optimizer settings (higher lr for the hash table).
    pub fn for_grid() -> Self {
        AdamConfig {
            lr: 1e-1,
            ..AdamConfig::default()
        }
    }

    /// Instant-NGP's MLP optimizer settings.
    pub fn for_mlp() -> Self {
        AdamConfig {
            lr: 1e-2,
            weight_decay: 1e-6,
            ..AdamConfig::default()
        }
    }
}

/// Adam state (first/second moments) for one flat parameter vector.
///
/// # Example
///
/// ```
/// use instant3d_nerf::adam::{Adam, AdamConfig};
/// let mut opt = Adam::new(AdamConfig::default(), 2);
/// let mut params = vec![1.0_f32, -1.0];
/// // Gradient of L = 0.5‖p‖² is p itself: descending shrinks the params.
/// for _ in 0..100 {
///     let grads = params.clone();
///     opt.step(&mut params, &grads);
/// }
/// assert!(params.iter().all(|p| p.abs() < 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates optimizer state for `num_params` scalars.
    pub fn new(cfg: AdamConfig, num_params: usize) -> Self {
        Adam {
            cfg,
            m: vec![0.0; num_params],
            v: vec![0.0; num_params],
            t: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> AdamConfig {
        self.cfg
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Applies one Adam update.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` don't match the state size.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "param count mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad count mismatch");
        self.t += 1;
        let b1 = self.cfg.beta1;
        let b2 = self.cfg.beta2;
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        for i in 0..params.len() {
            let mut g = grads[i];
            if self.cfg.weight_decay != 0.0 {
                g += self.cfg.weight_decay * params[i];
            }
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            params[i] -= self.cfg.lr * m_hat / (v_hat.sqrt() + self.cfg.eps);
        }
    }

    /// Sparse variant: only updates the listed indices. Used for hash-grid
    /// steps where most table entries received no gradient this iteration.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn step_sparse(&mut self, params: &mut [f32], grads: &[f32], touched: &[usize]) {
        assert_eq!(params.len(), self.m.len(), "param count mismatch");
        self.t += 1;
        let b1 = self.cfg.beta1;
        let b2 = self.cfg.beta2;
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        for &i in touched {
            let g = grads[i];
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            params[i] -= self.cfg.lr * m_hat / (v_hat.sqrt() + self.cfg.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        // Minimise (p - 3)²; gradient 2(p - 3).
        let mut opt = Adam::new(
            AdamConfig {
                lr: 0.1,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p = vec![0.0f32];
        for _ in 0..500 {
            let g = vec![2.0 * (p[0] - 3.0)];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "converged to {}", p[0]);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // Adam's bias correction makes the first step ≈ lr × sign(g).
        let mut opt = Adam::new(
            AdamConfig {
                lr: 0.5,
                eps: 1e-15,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1e-3]);
        assert!((p[0] + 0.5).abs() < 1e-3, "step was {}", p[0]);
    }

    #[test]
    fn zero_gradient_is_a_fixed_point() {
        let mut opt = Adam::new(AdamConfig::default(), 3);
        let mut p = vec![1.0, 2.0, 3.0];
        let before = p.clone();
        opt.step(&mut p, &[0.0, 0.0, 0.0]);
        assert_eq!(p, before);
    }

    #[test]
    fn sparse_step_only_touches_listed_indices() {
        let mut opt = Adam::new(AdamConfig::default(), 4);
        let mut p = vec![1.0f32; 4];
        let g = vec![1.0f32; 4];
        opt.step_sparse(&mut p, &g, &[1, 3]);
        assert_eq!(p[0], 1.0);
        assert_eq!(p[2], 1.0);
        assert!(p[1] < 1.0);
        assert!(p[3] < 1.0);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut opt = Adam::new(
            AdamConfig {
                lr: 0.01,
                weight_decay: 0.1,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p = vec![5.0f32];
        for _ in 0..50 {
            opt.step(&mut p, &[0.0]);
        }
        assert!(p[0] < 5.0);
    }

    #[test]
    fn step_counter_advances() {
        let mut opt = Adam::new(AdamConfig::default(), 1);
        assert_eq!(opt.steps(), 0);
        opt.step(&mut [0.0], &[1.0]);
        opt.step_sparse(&mut [0.0], &[1.0], &[0]);
        assert_eq!(opt.steps(), 2);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let mut opt = Adam::new(AdamConfig::default(), 2);
        opt.step(&mut [0.0], &[1.0]);
    }
}
