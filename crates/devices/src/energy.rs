//! Device energy accounting and efficiency comparisons (Fig. 16's
//! energy-efficiency axis).

use crate::perf::DeviceModel;
use instant3d_core::PipelineWorkload;

/// Runtime + energy of one (device, workload) pairing.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCost {
    /// Device name.
    pub device: String,
    /// Total runtime in seconds.
    pub seconds: f64,
    /// Total energy in joules.
    pub joules: f64,
    /// Average power in watts.
    pub watts: f64,
}

/// Evaluates a workload's cost on a device.
pub fn run_cost(device: &DeviceModel, w: &PipelineWorkload) -> RunCost {
    let seconds = device.runtime(w);
    let joules = device.energy(w);
    RunCost {
        device: device.spec().name.to_string(),
        seconds,
        joules,
        watts: device.spec().typical_power_w,
    }
}

/// Speedup of `fast` over `slow` (× factor; > 1 means `fast` wins).
pub fn speedup(slow: &RunCost, fast: &RunCost) -> f64 {
    slow.seconds / fast.seconds
}

/// Energy-efficiency gain of `frugal` over `hungry` (× factor).
pub fn energy_efficiency(hungry: &RunCost, frugal: &RunCost) -> f64 {
    hungry.joules / frugal.joules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::ITERS_TO_PSNR26;

    fn workload() -> PipelineWorkload {
        PipelineWorkload::paper_scale_instant_ngp(ITERS_TO_PSNR26)
    }

    #[test]
    fn run_cost_is_consistent() {
        let m = DeviceModel::xavier_nx();
        let c = run_cost(&m, &workload());
        assert_eq!(c.device, "Xavier NX");
        assert!((c.joules - c.seconds * c.watts).abs() < 1e-9);
    }

    #[test]
    fn speedup_and_efficiency_are_reciprocal_consistent() {
        let slow = run_cost(&DeviceModel::jetson_nano(), &workload());
        let fast = run_cost(&DeviceModel::xavier_nx(), &workload());
        let s = speedup(&slow, &fast);
        assert!(s > 1.0);
        assert!((speedup(&fast, &slow) - 1.0 / s).abs() < 1e-12);
        // Nano at 10 W vs Xavier at 20 W: efficiency gain is less than the
        // runtime gap because Xavier burns double the power.
        let e = energy_efficiency(&slow, &fast);
        assert!((e - s * 10.0 / 20.0).abs() < 1e-9);
    }
}
