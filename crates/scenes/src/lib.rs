//! Procedural dataset substrates for the Instant-3D reproduction.
//!
//! The paper evaluates on NeRF-Synthetic (8 Blender object scenes), SILVR
//! (large-volume plenoptic captures) and ScanNet (real RGB-D room scans).
//! None of those assets ship with this repository, so this crate builds the
//! closest synthetic equivalents:
//!
//! * [`primitives`] / [`scene`] — analytic radiance fields composed of soft
//!   density primitives with per-primitive albedo and mild view-dependent
//!   shading.
//! * [`synthetic`] — eight object-centric scenes standing in for
//!   NeRF-Synthetic, captured by an orbit camera rig.
//! * [`silvr`] — a large-extent indoor hall standing in for SILVR.
//! * [`scannet`] — a furnished room with a walking camera trajectory and
//!   sensor noise, standing in for ScanNet.
//! * [`dataset`] — posed image datasets (train/test splits plus ground-truth
//!   depth) rendered from the analytic fields with the same volume renderer
//!   the trainer uses.
//!
//! # Example
//!
//! ```
//! use instant3d_scenes::SceneLibrary;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let ds = SceneLibrary::synthetic_scene(2, 24, 6, &mut rng);
//! assert_eq!(ds.train_views.len(), 6);
//! assert!(!ds.test_views.is_empty());
//! ```

pub mod dataset;
pub mod primitives;
pub mod scannet;
pub mod scene;
pub mod silvr;
pub mod synthetic;

pub use dataset::{Dataset, SceneLibrary, View};
pub use primitives::{Primitive, Shape};
pub use scene::AnalyticScene;
