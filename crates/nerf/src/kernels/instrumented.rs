//! The instrumented co-simulation backend: SIMD numerics plus an optional
//! recorder for the hash-grid read/update address streams of real
//! training steps.
//!
//! The Instant-3D accelerator's FRM and BUM units are characterised from
//! training address streams (Figs. 12/13). Before this backend existed the
//! `instant3d-accel` cycle simulators could only replay pre-captured trace
//! files; [`InstrumentedKernels`] closes the loop by observing the batched
//! engine's **real memory traffic** — the level-major encode reads and the
//! per-level scatter updates, in the exact order the engine issues them —
//! during live `Trainer::step` calls, with zero trace files on disk.
//! `instant3d_accel::cosim` consumes the [`RecordedStreams`] and produces
//! FRM/BUM utilisation numbers online.
//!
//! With recording **off** (the default) every method delegates straight to
//! [`SimdKernels`] behind one relaxed atomic load, so the backend is
//! usable as an everyday backend (it participates in the golden suites and
//! the CI matrix like any other registered backend). With recording **on**
//! the grid kernels run the *observed scalar* bodies — bit-identical to
//! the SIMD kernels by the bit-identity contract — sequentially
//! ([`Kernels::sequential_grid`]), so the captured stream order is
//! deterministic.

use super::{Kernels, SimdKernels};
use crate::grid::{AccessPhase, GridAccessObserver, HashGrid};
use crate::math::Vec3;
use crate::mlp::{Mlp, MlpBatchWorkspace, MlpGradients};
use crate::render::RenderOutput;
use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One contiguous run of recorded grid accesses: a single encode call's
/// feed-forward reads, or a single level's scatter updates.
///
/// Segments are tagged with the shape of the grid they came from
/// (`grid_levels`, `grid_params`) so streams of different grids — the
/// decoupled density and color tables live in separate SRAM regions — can
/// be told apart without the backend knowing branch names. (Two distinct
/// grids with identical shape would share a tag; with the paper's
/// `S_D : S_C = 1 : 0.25` sizing they never do.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSegment {
    /// Feed-forward reads or back-propagation updates.
    pub phase: AccessPhase,
    /// Level count of the grid that produced the segment.
    pub grid_levels: usize,
    /// Parameter count of the grid that produced the segment.
    pub grid_params: usize,
    /// The addresses, in execution order. Feed-forward entries are flat
    /// whole-table entry indices (`entry_offset(level) + in-level addr`,
    /// the address a grid core's SRAM banking sees — always `< 2³²`);
    /// back-propagation entries are `(level << 32) | in-level addr` keys
    /// (what the BUM's one-to-all address match compares).
    pub addrs: Vec<u64>,
}

/// Everything one recording session captured, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordedStreams {
    /// Recorded segments, in capture order.
    pub segments: Vec<StreamSegment>,
}

impl RecordedStreams {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total recorded accesses across all segments and phases.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.addrs.len()).sum()
    }

    fn matches(seg: &StreamSegment, phase: AccessPhase, grid: &HashGrid) -> bool {
        seg.phase == phase
            && seg.grid_levels == grid.levels().len()
            && seg.grid_params == grid.num_params()
    }

    /// The feed-forward read stream of `grid` as flat whole-table entry
    /// addresses in capture order — the input shape of
    /// `instant3d_accel::simulate_frm`.
    pub fn reads_flat_for(&self, grid: &HashGrid) -> Vec<u32> {
        self.segments
            .iter()
            .filter(|s| Self::matches(s, AccessPhase::FeedForward, grid))
            .flat_map(|s| s.addrs.iter().map(|&a| a as u32))
            .collect()
    }

    /// The back-propagation update stream of `grid` as
    /// `(level << 32) | addr` keys in capture order. The batched engine
    /// scatters level by level, so the stream is naturally level-major —
    /// the hardware-visible order the BUM merges.
    pub fn updates_for(&self, grid: &HashGrid) -> Vec<u64> {
        self.segments
            .iter()
            .filter(|s| Self::matches(s, AccessPhase::BackProp, grid))
            .flat_map(|s| s.addrs.iter().copied())
            .collect()
    }
}

/// Records one kernel call's accesses, keyed for the segment tag.
struct StreamObserver<'a> {
    grid: &'a HashGrid,
    addrs: Vec<u64>,
}

impl GridAccessObserver for StreamObserver<'_> {
    #[inline]
    fn on_access(&mut self, phase: AccessPhase, level: u32, _corner: u8, addr: u32) {
        let key = match phase {
            AccessPhase::FeedForward => (self.grid.entry_offset(level as usize) + addr) as u64,
            AccessPhase::BackProp => ((level as u64) << 32) | addr as u64,
        };
        self.addrs.push(key);
    }
}

/// The `"instrumented"` backend: [`SimdKernels`] numerics with an
/// attachable address-stream recorder (see the [module docs](self)).
///
/// A shared instance is registered as a built-in
/// ([`super::instrumented`]); isolated co-sim sessions can wrap a fresh
/// instance in a [`super::BackendHandle`] instead:
///
/// ```
/// use instant3d_nerf::kernels::{BackendHandle, InstrumentedKernels};
///
/// let backend = BackendHandle::new(InstrumentedKernels::new());
/// let rec = backend.downcast_ref::<InstrumentedKernels>().unwrap();
/// assert!(!rec.is_recording());
/// rec.start_recording();
/// // ... run Trainer::step / kernel calls with `backend` ...
/// rec.stop_recording();
/// let streams = rec.take_streams();
/// assert!(streams.is_empty()); // nothing ran in this doctest
/// ```
#[derive(Debug, Default)]
pub struct InstrumentedKernels {
    inner: SimdKernels,
    recording: AtomicBool,
    segments: Mutex<Vec<StreamSegment>>,
}

impl InstrumentedKernels {
    /// A fresh backend with recording off and an empty stream buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts capturing grid address streams. Flip only **between**
    /// engine steps: the flag is sampled per kernel call, so toggling
    /// mid-step would record a partial stream (numerics are unaffected
    /// either way).
    ///
    /// The flag is genuinely `Relaxed` on both ends: segment contents are
    /// synchronized by the stream mutex, and the between-steps discipline
    /// means there is no cross-thread hand-off to order against.
    pub fn start_recording(&self) {
        // ORDERING: Relaxed — flag only; stream data is mutex-guarded.
        self.recording.store(true, Ordering::Relaxed);
    }

    /// Stops capturing. Already-recorded segments stay buffered until
    /// [`InstrumentedKernels::take_streams`].
    pub fn stop_recording(&self) {
        // ORDERING: Relaxed — flag only; stream data is mutex-guarded.
        self.recording.store(false, Ordering::Relaxed);
    }

    /// Whether grid calls are currently being recorded.
    pub fn is_recording(&self) -> bool {
        // ORDERING: Relaxed — flag only; stream data is mutex-guarded.
        self.recording.load(Ordering::Relaxed)
    }

    /// Drains and returns everything recorded so far.
    pub fn take_streams(&self) -> RecordedStreams {
        RecordedStreams {
            // PANICS: lock poisoning means a recording worker already
            // panicked — propagate rather than return a torn trace.
            segments: std::mem::take(&mut *self.segments.lock().unwrap()),
        }
    }

    fn push_segment(&self, phase: AccessPhase, grid: &HashGrid, addrs: Vec<u64>) {
        if addrs.is_empty() {
            return;
        }
        // PANICS: lock poisoning means a recording worker already
        // panicked — propagate rather than record onto a torn trace.
        self.segments.lock().unwrap().push(StreamSegment {
            phase,
            grid_levels: grid.levels().len(),
            grid_params: grid.num_params(),
            addrs,
        });
    }
}

impl Kernels for InstrumentedKernels {
    fn name(&self) -> &'static str {
        "instrumented"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn grid_encode_chunk(&self, grid: &HashGrid, unit_positions: &[Vec3], out: &mut [f32]) {
        if !self.is_recording() {
            return self.inner.grid_encode_chunk(grid, unit_positions, out);
        }
        // Observed scalar bodies: same level-major order and bits as the
        // SIMD kernels, plus the address stream.
        let mut obs = StreamObserver {
            grid,
            addrs: Vec::with_capacity(unit_positions.len() * grid.reads_per_point()),
        };
        for l in 0..grid.levels().len() {
            grid.encode_level_observed(l, unit_positions, out, &mut obs);
        }
        self.push_segment(AccessPhase::FeedForward, grid, obs.addrs);
    }

    fn grid_encode_levels_chunk(
        &self,
        grid: &HashGrid,
        levels: &[usize],
        unit_positions: &[Vec3],
        out: &mut [f32],
    ) {
        if !self.is_recording() {
            return self
                .inner
                .grid_encode_levels_chunk(grid, levels, unit_positions, out);
        }
        let mut obs = StreamObserver {
            grid,
            addrs: Vec::with_capacity(unit_positions.len() * 8 * levels.len()),
        };
        for &l in levels {
            grid.encode_level_observed(l, unit_positions, out, &mut obs);
        }
        self.push_segment(AccessPhase::FeedForward, grid, obs.addrs);
    }

    fn grid_scatter_level(
        &self,
        grid: &HashGrid,
        level: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    ) {
        if !self.is_recording() {
            return self
                .inner
                .grid_scatter_level(grid, level, level_grads, unit_positions, d_out);
        }
        let mut obs = StreamObserver {
            grid,
            addrs: Vec::with_capacity(unit_positions.len() * 8),
        };
        grid.scatter_level_observed(level, level_grads, unit_positions, d_out, &mut obs);
        self.push_segment(AccessPhase::BackProp, grid, obs.addrs);
    }

    fn mlp_forward_batch<'w>(
        &self,
        mlp: &Mlp,
        inputs: &[f32],
        ws: &'w mut MlpBatchWorkspace,
    ) -> &'w [f32] {
        self.inner.mlp_forward_batch(mlp, inputs, ws)
    }

    fn mlp_backward_batch(
        &self,
        mlp: &Mlp,
        d_output: &[f32],
        ws: &mut MlpBatchWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    ) {
        self.inner
            .mlp_backward_batch(mlp, d_output, ws, grads, d_input);
    }

    fn composite_ray(
        &self,
        t: &[f32],
        dt: &[f32],
        sigma: &[f32],
        rgb: &[Vec3],
        background: Vec3,
        cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
    ) -> (RenderOutput, usize) {
        self.inner
            .composite_ray(t, dt, sigma, rgb, background, cache)
    }

    /// Sequential while recording, so the captured stream order is the
    /// deterministic level-major/level-ordered execution order.
    fn sequential_grid(&self) -> bool {
        self.is_recording()
    }
}
