//! The Instant-3D algorithm (ISCA 2023, §3) and the Instant-NGP baseline it
//! accelerates.
//!
//! The paper's algorithmic contribution is to *decompose* Instant-NGP's
//! single multiresolution hash grid into a **density grid** and a **color
//! grid**, then exploit the empirically different sensitivities of the two
//! feature families:
//!
//! * **Different grid sizes** (§3.2) — the color grid can be 4× smaller
//!   (`S_D : S_C = 1 : 0.25`) with no PSNR loss.
//! * **Different update frequencies** (§3.3) — the color grid can be
//!   updated every other iteration (`F_D : F_C = 1 : 0.5`).
//!
//! Both knobs live in [`TrainConfig`]; [`GridTopology::Coupled`] reproduces
//! the Instant-NGP baseline with a single shared grid.
//!
//! The training hot path is the **batched SoA execution engine**
//! ([`batch`]): rays are gathered into structure-of-arrays buffers and
//! each pipeline stage runs once over the whole batch, parallelised via
//! rayon with disjoint-write scheduling — results are bit-identical to
//! the scalar reference path and to any worker count. The scalar
//! point-at-a-time path survives as the executable specification
//! ([`Trainer::step_scalar`](trainer::Trainer::step_scalar)), gated by
//! golden equivalence tests. Within the batched engine the hot kernels
//! dispatch through the open kernel-backend API ([`kernels`]): a
//! [`BackendHandle`] resolved by name from the process-wide registry
//! (scalar reference, lane-batched SIMD, the instrumented co-sim backend,
//! or anything registered at runtime), selected by
//! [`TrainConfig::kernel_backend`] / the `INSTANT3D_KERNEL_BACKEND` env
//! var — backends are bit-identical by
//! the additive-order/no-FMA contract of `instant3d_nerf::simd`, and the
//! golden suites run once per backend to keep them that way.
//!
//! Modules:
//!
//! * [`config`] — training configuration and the paper's preset operating
//!   points.
//! * [`schedule`] — update-frequency schedules for the two branches.
//! * [`model`] — the NeRF model: hash grid(s) + density/color MLP heads,
//!   with full hand-derived backpropagation.
//! * [`batch`] — the batched SoA execution engine and its reusable
//!   [`BatchWorkspace`] (zero steady-state allocation).
//! * [`trainer`] — the six-step training pipeline (Fig. 2) with workload
//!   accounting and optional memory-access tracing, batched by default.
//! * [`pool`] — the shape-keyed [`WorkspacePool`] shared by fleet slices
//!   and tile-render jobs (zero steady-state allocation).
//! * [`render`] — the tile-streaming frame renderer: budgeted progressive
//!   frames with converged-tile caching and version-keyed invalidation
//!   (see its module docs for the frame lifecycle).
//! * [`eval`] — test-view rendering (a thin full-budget client of
//!   [`render`]) and RGB/depth PSNR evaluation.
//! * [`profile`] — per-pipeline-step operation counts, both measured and
//!   paper-scale, consumed by the device and accelerator models.

pub mod batch;
pub mod checkpoint;
pub mod config;
pub mod eval;
pub mod model;
pub mod pool;
pub mod profile;
pub mod render;
pub mod schedule;
pub mod timing;
pub mod trainer;
pub mod vanilla;

pub use batch::{BatchWorkspace, WorkspaceShape};
pub use config::{GridTopology, TrainConfig};
pub use eval::EvalResult;
pub use instant3d_nerf::kernels::{self, BackendHandle, Kernels};
pub use model::NerfModel;
pub use pool::WorkspacePool;
pub use profile::{PipelineStep, PipelineWorkload, WorkloadStats};
pub use render::{FrameBudget, FrameProgress, FrameScheduler, RenderOptions, RenderTelemetry};
pub use schedule::UpdateSchedule;
pub use trainer::{StepStats, TrainReport, Trainer};
