//! Device specification sheets — the rows of the paper's Tab. 3.

/// Static specification of a device (Tab. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Process node in nm.
    pub technology_nm: u32,
    /// On-chip SRAM in bytes.
    pub sram_bytes: usize,
    /// Die area in mm² (`None` where the paper lists N/A).
    pub area_mm2: Option<f64>,
    /// Core clock in GHz.
    pub frequency_ghz: f64,
    /// DRAM type string.
    pub dram: &'static str,
    /// DRAM bandwidth in bytes/s.
    pub dram_bandwidth: f64,
    /// Typical power in watts.
    pub typical_power_w: f64,
}

/// Jetson Nano: 20 nm, 2.5 MB SRAM, 118 mm², 0.9 GHz, LPDDR4-1600
/// (25.6 GB/s), 10 W.
pub fn jetson_nano() -> DeviceSpec {
    DeviceSpec {
        name: "Jetson Nano",
        technology_nm: 20,
        sram_bytes: (2.5 * 1024.0 * 1024.0) as usize,
        area_mm2: Some(118.0),
        frequency_ghz: 0.9,
        dram: "LPDDR4-1600",
        dram_bandwidth: 25.6e9,
        typical_power_w: 10.0,
    }
}

/// Jetson TX2: 16 nm, 5 MB SRAM, 1.4 GHz, LPDDR4-1866 (59.7 GB/s), 15 W.
pub fn jetson_tx2() -> DeviceSpec {
    DeviceSpec {
        name: "Jetson TX2",
        technology_nm: 16,
        sram_bytes: 5 * 1024 * 1024,
        area_mm2: None,
        frequency_ghz: 1.4,
        dram: "LPDDR4-1866",
        dram_bandwidth: 59.7e9,
        typical_power_w: 15.0,
    }
}

/// Xavier NX: 12 nm, 11 MB SRAM, 350 mm², 1.1 GHz, LPDDR4-1866
/// (59.7 GB/s), 20 W.
pub fn xavier_nx() -> DeviceSpec {
    DeviceSpec {
        name: "Xavier NX",
        technology_nm: 12,
        sram_bytes: 11 * 1024 * 1024,
        area_mm2: Some(350.0),
        frequency_ghz: 1.1,
        dram: "LPDDR4-1866",
        dram_bandwidth: 59.7e9,
        typical_power_w: 20.0,
    }
}

/// The Instant-3D accelerator's Tab. 3 row: 28 nm, 1.5 MB SRAM, 6.8 mm²,
/// 0.8 GHz, LPDDR4-1866, 1.9 W.
pub fn instant3d_accelerator() -> DeviceSpec {
    DeviceSpec {
        name: "Instant-3D",
        technology_nm: 28,
        sram_bytes: (1.5 * 1024.0 * 1024.0) as usize,
        area_mm2: Some(6.8),
        frequency_ghz: 0.8,
        dram: "LPDDR4-1866",
        dram_bandwidth: 59.7e9,
        typical_power_w: 1.9,
    }
}

/// All Tab. 3 rows in paper order.
pub fn all_specs() -> Vec<DeviceSpec> {
    vec![
        jetson_nano(),
        jetson_tx2(),
        xavier_nx(),
        instant3d_accelerator(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab3_values_match_paper() {
        let nano = jetson_nano();
        assert_eq!(nano.technology_nm, 20);
        assert_eq!(nano.typical_power_w, 10.0);
        assert_eq!(nano.dram_bandwidth, 25.6e9);

        let tx2 = jetson_tx2();
        assert_eq!(tx2.technology_nm, 16);
        assert_eq!(tx2.typical_power_w, 15.0);
        assert_eq!(tx2.area_mm2, None);

        let nx = xavier_nx();
        assert_eq!(nx.technology_nm, 12);
        assert_eq!(nx.typical_power_w, 20.0);
        assert_eq!(nx.sram_bytes, 11 * 1024 * 1024);

        let acc = instant3d_accelerator();
        assert_eq!(acc.technology_nm, 28);
        assert_eq!(acc.area_mm2, Some(6.8));
        assert_eq!(acc.typical_power_w, 1.9);
        assert_eq!(acc.frequency_ghz, 0.8);
    }

    #[test]
    fn accelerator_is_tiny_and_frugal() {
        // The co-design story: 6.8 mm² vs 350 mm², 1.9 W vs 20 W.
        let nx = xavier_nx();
        let acc = instant3d_accelerator();
        assert!(acc.area_mm2.unwrap() < nx.area_mm2.unwrap() / 50.0);
        assert!(acc.typical_power_w < nx.typical_power_w / 10.0);
    }

    #[test]
    fn all_specs_lists_four_devices() {
        let s = all_specs();
        assert_eq!(s.len(), 4);
        let names: Vec<&str> = s.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            ["Jetson Nano", "Jetson TX2", "Xavier NX", "Instant-3D"]
        );
    }
}
