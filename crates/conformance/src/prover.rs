//! The symbolic disjointness/coverage prover for declared
//! [`WritePlan`]s.
//!
//! A [`WritePlan`] (declared next to each parallel dispatch seam in
//! `instant3d-nerf` / `instant3d-core`) states the per-task write
//! intervals as integer expressions of bounded shape parameters. This
//! module discharges, for **all** in-bounds parameter values, the
//! obligations that make the dispatch race-free and complete:
//!
//! 1. `scale-nonneg` — the per-interval element multiplier is ≥ 0, so
//!    proving the unscaled intervals ordered/covering is enough.
//! 2. `tasks-ordered` — `end(t) ≤ start(t+1)`: consecutive tasks are
//!    ordered, hence **pairwise disjoint** (tasks are declared in buffer
//!    order).
//! 3. `coverage-gapless` — `start(t+1) ≤ end(t)`: with (2), consecutive
//!    tasks butt exactly.
//! 4. `coverage-left-edge` — `start(0) = 0` whenever a task exists.
//! 5. `coverage-right-edge` — `end(count−1) = total` whenever a task
//!    exists.
//! 6. `coverage-empty` — `count = 0 ⇒ total = 0` (an empty dispatch may
//!    not leave an uncovered buffer). For cut-partition plans this holds
//!    definitionally (`total` *is* the top cut, and
//!    [`WritePlan::instantiate`] re-validates the cut axioms on every
//!    concrete table), so the symbolic obligation is discharged by those
//!    axioms.
//! 7. `task-start-nonneg`, 8. `task-start-le-end`, 9. `task-end-le-total`
//!    — every task's interval sits inside `[0, total]`.
//!
//! # How the proof works
//!
//! Expressions are normalized to **integer polynomials** over the
//! parameters (plus one fresh variable per distinct cut-atom
//! `cut_f(arg)`). `min`/`max` are eliminated by **case splits**: each
//! occurrence branches into its two operands with the corresponding
//! side condition (`b − a ≥ 0` / `a − b ≥ 0`) added to that branch's
//! assumptions — every branch must prove. The hypotheses are linear/
//! bilinear facts: parameter bounds, the exact integer characterization
//! of ceil-division (`d·b ≥ a` and `d·b ≤ a + b − 1` for
//! `d = ceil(a/b)`), cut-atom bounds and monotonicity, and the
//! obligation's task-index range.
//!
//! A goal `G ≥ 0` is then proved by **nonnegative combination search**:
//! `G` is nonnegative if all its coefficients are (every variable is
//! ≥ 0), or if `G·|c| − C·|g| ≥ 0` is provable for some hypothesis
//! `C ≥ 0` sharing a same-signed monomial (coefficients `g` in `G`, `c`
//! in `C`) — subtracting a nonnegative multiple of a nonnegative
//! hypothesis. The pool is augmented with products `C·v` of each
//! hypothesis with each single variable (capturing the bilinear facts
//! the remainder-tail cases need). The search is depth- and node-capped
//! and every arithmetic step is checked `i128` — any overflow or cap
//! abandons that proof path, so the prover is **sound**: `Proved` means
//! proved; a failure to prove is reported with a concrete
//! counterexample shape when the exhaustive small-shape sweep finds one
//! (a real overlap/gap), and as "unproven" otherwise.

use instant3d_nerf::kernels::plan::{ConcretePlan, Derive, Expr, WritePlan, UNBOUNDED};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Polynomials
// ---------------------------------------------------------------------

/// A multivariate integer polynomial: monomial (sorted variable ids,
/// with multiplicity) → coefficient. Variables `0..n_params` are the
/// plan's parameters; higher ids are cut atoms.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
struct Poly(BTreeMap<Vec<u32>, i128>);

impl Poly {
    fn constant(c: i128) -> Poly {
        let mut p = Poly::default();
        if c != 0 {
            p.0.insert(Vec::new(), c);
        }
        p
    }

    fn var(v: u32) -> Poly {
        let mut p = Poly::default();
        p.0.insert(vec![v], 1);
        p
    }

    fn insert(&mut self, mono: Vec<u32>, c: i128) -> Option<()> {
        let entry = self.0.entry(mono.clone()).or_insert(0);
        *entry = entry.checked_add(c)?;
        if *entry == 0 {
            self.0.remove(&mono);
        }
        Some(())
    }

    fn add(&self, o: &Poly) -> Option<Poly> {
        let mut p = self.clone();
        for (m, &c) in &o.0 {
            p.insert(m.clone(), c)?;
        }
        Some(p)
    }

    fn sub(&self, o: &Poly) -> Option<Poly> {
        let mut p = self.clone();
        for (m, &c) in &o.0 {
            p.insert(m.clone(), c.checked_neg()?)?;
        }
        Some(p)
    }

    fn mul(&self, o: &Poly) -> Option<Poly> {
        let mut p = Poly::default();
        for (ma, &ca) in &self.0 {
            for (mb, &cb) in &o.0 {
                let mut m = ma.clone();
                m.extend_from_slice(mb);
                m.sort_unstable();
                p.insert(m, ca.checked_mul(cb)?)?;
            }
        }
        Some(p)
    }

    fn scale(&self, k: i128) -> Option<Poly> {
        self.mul(&Poly::constant(k))
    }

    fn is_zero(&self) -> bool {
        self.0.is_empty()
    }

    /// All coefficients ≥ 0 — with every variable nonnegative, the
    /// polynomial is nonnegative everywhere in the region.
    fn all_coeffs_nonneg(&self) -> bool {
        self.0.values().all(|&c| c >= 0)
    }

    /// Divides out the gcd of the coefficients — the canonical
    /// representative used by the search's seen-set.
    fn normalized(&self) -> Poly {
        let g = self
            .0
            .values()
            .fold(0i128, |g, &c| gcd(g, c.unsigned_abs() as i128));
        if g <= 1 {
            return self.clone();
        }
        Poly(self.0.iter().map(|(m, &c)| (m.clone(), c / g)).collect())
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

// ---------------------------------------------------------------------
// Expression normalization (min/max case splits, cut atoms)
// ---------------------------------------------------------------------

/// One case-split branch of a normalized expression: its polynomial
/// value under the branch's side conditions (each `p` meaning `p ≥ 0`).
#[derive(Debug, Clone)]
struct Branch {
    value: Poly,
    constraints: Vec<Poly>,
}

const MAX_BRANCHES: usize = 64;

/// Normalization state shared across the expressions of one obligation,
/// so the same `cut_f(arg)` maps to the same atom variable everywhere.
struct NormCtx<'p> {
    plan: &'p WritePlan,
    /// `(family, normalized arg)` per atom; atom `i` is variable
    /// `n_params + i`.
    atoms: Vec<(usize, Poly)>,
}

impl<'p> NormCtx<'p> {
    fn new(plan: &'p WritePlan) -> Self {
        NormCtx {
            plan,
            atoms: Vec::new(),
        }
    }

    /// Normalizes `e` under `subst` (parameter index → replacement
    /// polynomial; `None` keeps the parameter symbolic) into case-split
    /// branches.
    fn norm(&mut self, e: &Expr, subst: &[Option<Poly>]) -> Result<Vec<Branch>, String> {
        let combine = |a: Vec<Branch>,
                       b: Vec<Branch>,
                       f: &dyn Fn(&Poly, &Poly) -> Option<Poly>|
         -> Result<Vec<Branch>, String> {
            let mut out = Vec::new();
            for ba in &a {
                for bb in &b {
                    let value = f(&ba.value, &bb.value).ok_or("overflow")?;
                    let mut constraints = ba.constraints.clone();
                    constraints.extend(bb.constraints.iter().cloned());
                    out.push(Branch { value, constraints });
                }
            }
            if out.len() > MAX_BRANCHES {
                return Err("too many min/max case splits".to_string());
            }
            Ok(out)
        };
        Ok(match e {
            Expr::Const(c) => vec![Branch {
                value: Poly::constant(*c),
                constraints: Vec::new(),
            }],
            Expr::Param(i) => vec![Branch {
                value: match subst.get(*i).and_then(|s| s.as_ref()) {
                    Some(p) => p.clone(),
                    None => Poly::var(*i as u32),
                },
                constraints: Vec::new(),
            }],
            Expr::Cut(f, arg) => {
                let fam = self
                    .plan
                    .cuts
                    .get(*f)
                    .ok_or_else(|| format!("cut family #{f} undeclared"))?;
                // Endpoint rewrites use the family's count/total, which
                // must be case-split-free (they are parameter products in
                // every real plan).
                let single = |me: &mut Self, e: &Expr| -> Result<Poly, String> {
                    let b = me.norm(e, subst)?;
                    match &b[..] {
                        [one] if one.constraints.is_empty() => Ok(one.value.clone()),
                        _ => Err("cut family shape must be min/max-free".to_string()),
                    }
                };
                let count = single(self, &fam.count.clone())?;
                let total = single(self, &fam.total.clone())?;
                let args = self.norm(arg, subst)?;
                let mut out = Vec::new();
                for ab in args {
                    // Cut axioms, applied syntactically: cut(0) = 0 and
                    // cut(count) = total.
                    let value = if ab.value.is_zero() {
                        Poly::constant(0)
                    } else if ab.value == count {
                        total.clone()
                    } else {
                        let id = match self
                            .atoms
                            .iter()
                            .position(|(af, ap)| af == f && *ap == ab.value)
                        {
                            Some(i) => i,
                            None => {
                                self.atoms.push((*f, ab.value.clone()));
                                self.atoms.len() - 1
                            }
                        };
                        Poly::var((self.plan.params.len() + id) as u32)
                    };
                    out.push(Branch {
                        value,
                        constraints: ab.constraints,
                    });
                }
                out
            }
            Expr::Add(a, b) => {
                combine(self.norm(a, subst)?, self.norm(b, subst)?, &|x, y| x.add(y))?
            }
            Expr::Sub(a, b) => {
                combine(self.norm(a, subst)?, self.norm(b, subst)?, &|x, y| x.sub(y))?
            }
            Expr::Mul(a, b) => {
                combine(self.norm(a, subst)?, self.norm(b, subst)?, &|x, y| x.mul(y))?
            }
            Expr::Min(a, b) | Expr::Max(a, b) => {
                let is_min = matches!(e, Expr::Min(..));
                let av = self.norm(a, subst)?;
                let bv = self.norm(b, subst)?;
                let mut out = Vec::new();
                for ba in &av {
                    for bb in &bv {
                        let a_minus_b = ba.value.sub(&bb.value).ok_or("overflow")?;
                        let b_minus_a = bb.value.sub(&ba.value).ok_or("overflow")?;
                        // min picks a when b − a ≥ 0; max when a − b ≥ 0.
                        let (a_side, b_side) = if is_min {
                            (b_minus_a, a_minus_b)
                        } else {
                            (a_minus_b, b_minus_a)
                        };
                        let mut shared = ba.constraints.clone();
                        shared.extend(bb.constraints.iter().cloned());
                        let mut ca = shared.clone();
                        ca.push(a_side);
                        out.push(Branch {
                            value: ba.value.clone(),
                            constraints: ca,
                        });
                        let mut cb = shared;
                        cb.push(b_side);
                        out.push(Branch {
                            value: bb.value.clone(),
                            constraints: cb,
                        });
                    }
                }
                if out.len() > MAX_BRANCHES {
                    return Err("too many min/max case splits".to_string());
                }
                out
            }
        })
    }

    /// Normalizes a case-split-free expression to a single polynomial.
    fn norm_single(&mut self, e: &Expr, subst: &[Option<Poly>]) -> Result<Poly, String> {
        let b = self.norm(e, subst)?;
        match &b[..] {
            [one] if one.constraints.is_empty() => Ok(one.value.clone()),
            _ => Err("expected a min/max-free expression".to_string()),
        }
    }

    /// The atom hypotheses: each `cut_f(arg)` is in `[0, total_f]`, and
    /// atoms of the same family are ordered whenever their arguments
    /// provably are (argument difference with all-nonnegative
    /// coefficients).
    fn atom_facts(&mut self, subst: &[Option<Poly>]) -> Result<Vec<Poly>, String> {
        let mut facts = Vec::new();
        for i in 0..self.atoms.len() {
            let (f, _) = self.atoms[i];
            let v = Poly::var((self.plan.params.len() + i) as u32);
            let total = {
                let e = self.plan.cuts[f].total.clone();
                self.norm_single(&e, subst)?
            };
            facts.push(v.clone());
            facts.push(total.sub(&v).ok_or("overflow")?);
        }
        for i in 0..self.atoms.len() {
            for j in 0..self.atoms.len() {
                if i == j || self.atoms[i].0 != self.atoms[j].0 {
                    continue;
                }
                let diff = self.atoms[i].1.sub(&self.atoms[j].1).ok_or("overflow")?;
                if diff.all_coeffs_nonneg() {
                    let vi = Poly::var((self.plan.params.len() + i) as u32);
                    let vj = Poly::var((self.plan.params.len() + j) as u32);
                    facts.push(vi.sub(&vj).ok_or("overflow")?);
                }
            }
        }
        Ok(facts)
    }
}

// ---------------------------------------------------------------------
// Hypotheses and the nonnegative-combination search
// ---------------------------------------------------------------------

/// The per-plan hypotheses that hold for every obligation: parameter
/// nonnegativity and declared bounds, and the exact integer facts of
/// derived ceil-divisions. The task parameter's range is
/// obligation-specific and supplied separately.
fn param_facts(plan: &WritePlan, ctx: &mut NormCtx) -> Result<Vec<Poly>, String> {
    let empty_subst = vec![None; plan.params.len()];
    let mut facts = Vec::new();
    for (i, p) in plan.params.iter().enumerate() {
        let v = Poly::var(i as u32);
        facts.push(v.clone()); // v ≥ 0 always (declared lo ≥ 0)
        if i == plan.task {
            continue; // range supplied per obligation
        }
        if p.lo > 0 {
            facts.push(v.sub(&Poly::constant(p.lo)).ok_or("overflow")?);
        }
        if p.hi != Expr::Const(UNBOUNDED) {
            let hi = ctx.norm_single(&p.hi, &empty_subst)?;
            facts.push(hi.sub(&v).ok_or("overflow")?);
        }
        if let Derive::DivCeil(a, b) = &p.derive {
            let a = ctx.norm_single(a, &empty_subst)?;
            let b = ctx.norm_single(b, &empty_subst)?;
            let db = v.mul(&b).ok_or("overflow")?;
            // d = ceil(a/b) ⇔ d·b ≥ a and d·b ≤ a + b − 1.
            facts.push(db.sub(&a).ok_or("overflow")?);
            facts.push(
                a.add(&b)
                    .and_then(|s| s.sub(&Poly::constant(1)))
                    .and_then(|s| s.sub(&db))
                    .ok_or("overflow")?,
            );
        }
    }
    Ok(facts)
}

const MAX_DEPTH: usize = 5;
const MAX_NODES: usize = 1_500;

/// Proves `goal ≥ 0` from `facts` (each `≥ 0`) by nonnegative-combination
/// search over a pool augmented with hypothesis × variable products.
/// Iterative deepening: real proofs are 1–3 subtractions deep, so the
/// shallow iterations find them almost immediately, and only genuinely
/// unprovable goals pay the full budget.
fn prove(goal: &Poly, facts: &[Poly], n_vars: usize) -> bool {
    let mut pool: Vec<Poly> = facts.iter().filter(|f| !f.is_zero()).cloned().collect();
    let singles = pool.clone();
    for f in &singles {
        for v in 0..n_vars {
            if let Some(p) = f.mul(&Poly::var(v as u32)) {
                pool.push(p);
            }
        }
    }
    for fuel in 1..=MAX_DEPTH {
        let mut seen = BTreeMap::new();
        let mut nodes = 0usize;
        if search(goal, &pool, fuel, &mut seen, &mut nodes) {
            return true;
        }
    }
    false
}

fn search(
    goal: &Poly,
    pool: &[Poly],
    fuel: usize,
    seen: &mut BTreeMap<Poly, usize>,
    nodes: &mut usize,
) -> bool {
    if goal.all_coeffs_nonneg() {
        return true;
    }
    if fuel == 0 || *nodes >= MAX_NODES {
        return false;
    }
    *nodes += 1;
    // Prune only if this goal was already explored with at least as much
    // fuel (a fuel-keyed seen-map keeps iterative deepening exact).
    let key = goal.normalized();
    match seen.get(&key) {
        Some(&f) if f >= fuel => return false,
        _ => {
            seen.insert(key, fuel);
        }
    }
    for c in pool {
        for (m, &gm) in &goal.0 {
            let Some(&cm) = c.0.get(m) else { continue };
            if (gm > 0) != (cm > 0) {
                continue; // only same-signed monomials cancel soundly
            }
            // goal' = goal·|cm| − c·|gm| has no monomial m, and
            // goal'≥0 ∧ c≥0 ⇒ goal = (goal' + c·|gm|)/|cm| ≥ 0.
            let Some(next) = goal
                .scale(cm.abs())
                .and_then(|g| c.scale(gm.abs()).and_then(|cc| g.sub(&cc)))
            else {
                continue;
            };
            if search(&next, pool, fuel - 1, seen, nodes) {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Obligations
// ---------------------------------------------------------------------

struct Goal {
    name: &'static str,
    branches: Vec<Branch>,
    /// Obligation-specific hypotheses (task range, emptiness).
    extra: Vec<Poly>,
    atom_facts: Vec<Poly>,
}

/// Builds the proof obligations of `plan` (see the [module docs](self)).
fn goals(plan: &WritePlan) -> Result<Vec<Goal>, String> {
    let np = plan.params.len();
    let t = plan.task;
    let sym = vec![None; np];
    let at = |p: Poly| {
        let mut s = vec![None; np];
        s[t] = Some(p);
        s
    };
    let t_poly = Poly::var(t as u32);
    let t_next = t_poly.add(&Poly::constant(1)).ok_or("overflow")?;

    let mut out = Vec::new();
    let mut push = |name: &'static str,
                    build: &dyn Fn(&mut NormCtx) -> Result<Vec<Branch>, String>,
                    extra: Vec<Poly>|
     -> Result<(), String> {
        let mut ctx = NormCtx::new(plan);
        let branches = build(&mut ctx)?;
        let atom_facts = ctx.atom_facts(&vec![None; np])?;
        out.push(Goal {
            name,
            branches,
            extra,
            atom_facts,
        });
        Ok(())
    };
    // Cross-combines two branch sets under `f` on the values.
    fn cross(
        a: Vec<Branch>,
        b: Vec<Branch>,
        f: impl Fn(&Poly, &Poly) -> Option<Poly>,
    ) -> Result<Vec<Branch>, String> {
        let mut out = Vec::new();
        for ba in &a {
            for bb in &b {
                let value = f(&ba.value, &bb.value).ok_or("overflow")?;
                let mut constraints = ba.constraints.clone();
                constraints.extend(bb.constraints.iter().cloned());
                out.push(Branch { value, constraints });
            }
        }
        if out.len() > MAX_BRANCHES {
            return Err("too many min/max case splits".to_string());
        }
        Ok(out)
    }

    let count = NormCtx::new(plan).norm_single(&plan.count, &sym)?;
    let count_m1 = count.sub(&Poly::constant(1)).ok_or("overflow")?;
    let count_m2 = count.sub(&Poly::constant(2)).ok_or("overflow")?;
    // Task range inside a dispatch with at least t+1 tasks.
    let t_in_range = vec![
        t_poly.clone(),
        count_m1.sub(&t_poly).ok_or("overflow")?, // t ≤ count−1
    ];
    let t_has_next = vec![
        t_poly.clone(),
        count_m2.sub(&t_poly).ok_or("overflow")?, // t ≤ count−2
    ];

    // 1. scale-nonneg.
    push(
        "scale-nonneg",
        &|ctx| ctx.norm(&plan.scale, &sym),
        Vec::new(),
    )?;
    // 2/3. ordered + gapless: start(t+1) = end(t).
    push(
        "tasks-ordered",
        &|ctx| {
            let s = ctx.norm(&plan.start, &at(t_next.clone()))?;
            let e = ctx.norm(&plan.end, &sym)?;
            cross(s, e, |s, e| s.sub(e))
        },
        t_has_next.clone(),
    )?;
    push(
        "coverage-gapless",
        &|ctx| {
            let e = ctx.norm(&plan.end, &sym)?;
            let s = ctx.norm(&plan.start, &at(t_next.clone()))?;
            cross(e, s, |e, s| e.sub(s))
        },
        t_has_next,
    )?;
    // 4. left edge: start(0) = 0 when a task exists.
    for (name, flip) in [
        ("coverage-left-edge (start(0) ≥ 0)", false),
        ("coverage-left-edge (start(0) ≤ 0)", true),
    ] {
        push(
            name,
            &|ctx| {
                let s = ctx.norm(&plan.start, &at(Poly::constant(0)))?;
                s.into_iter()
                    .map(|mut b| {
                        if flip {
                            b.value = Poly::constant(0).sub(&b.value).ok_or("overflow")?;
                        }
                        Ok(b)
                    })
                    .collect()
            },
            vec![count_m1.clone()],
        )?;
    }
    // 5. right edge: end(count−1) = total when a task exists.
    for (name, flip) in [
        ("coverage-right-edge (end ≥ total)", false),
        ("coverage-right-edge (end ≤ total)", true),
    ] {
        push(
            name,
            &|ctx| {
                let e = ctx.norm(&plan.end, &at(count_m1.clone()))?;
                let tot = ctx.norm(&plan.total, &sym)?;
                if flip {
                    cross(tot, e, |t, e| t.sub(e))
                } else {
                    cross(e, tot, |e, t| e.sub(t))
                }
            },
            vec![count_m1.clone()],
        )?;
    }
    // 6. empty: count = 0 ⇒ total = 0 (total ≥ 0 is a parameter bound;
    // the cut-partition form holds by the instantiation-validated cut
    // axioms: total IS cut(count)).
    if !plan.total_is_top_cut {
        push(
            "coverage-empty",
            &|ctx| {
                let tot = ctx.norm(&plan.total, &sym)?;
                tot.into_iter()
                    .map(|mut b| {
                        b.value = Poly::constant(0).sub(&b.value).ok_or("overflow")?;
                        Ok(b)
                    })
                    .collect()
            },
            vec![Poly::constant(0).sub(&count).ok_or("overflow")?],
        )?;
    }
    // 7–9. every task's interval sits inside [0, total].
    push(
        "task-start-nonneg",
        &|ctx| ctx.norm(&plan.start, &sym),
        t_in_range.clone(),
    )?;
    push(
        "task-start-le-end",
        &|ctx| {
            let e = ctx.norm(&plan.end, &sym)?;
            let s = ctx.norm(&plan.start, &sym)?;
            cross(e, s, |e, s| e.sub(s))
        },
        t_in_range.clone(),
    )?;
    push(
        "task-end-le-total",
        &|ctx| {
            let tot = ctx.norm(&plan.total, &sym)?;
            let e = ctx.norm(&plan.end, &sym)?;
            cross(tot, e, |t, e| t.sub(e))
        },
        t_in_range,
    )?;
    Ok(out)
}

// ---------------------------------------------------------------------
// Public driver
// ---------------------------------------------------------------------

/// Proves every obligation of `plan` for all in-bounds shapes.
///
/// `Err` carries a human-readable diagnostic: the failed obligations,
/// plus — when the exhaustive small-shape sweep finds one — a concrete
/// counterexample naming both clashing tasks and their ranges.
pub fn prove_plan(plan: &WritePlan) -> Result<(), String> {
    let mut failed: Vec<String> = Vec::new();
    let base = {
        let mut ctx = NormCtx::new(plan);
        param_facts(plan, &mut ctx)?
    };
    match goals(plan) {
        Ok(gs) => {
            for g in gs {
                let n_vars = plan.params.len()
                    + plan.cuts.len().max(1) * 4 // generous atom headroom
                    + g.atom_facts.len();
                let unproven = g.branches.iter().any(|b| {
                    let mut facts = base.clone();
                    facts.extend(g.extra.iter().cloned());
                    facts.extend(g.atom_facts.iter().cloned());
                    facts.extend(b.constraints.iter().cloned());
                    !prove(&b.value, &facts, n_vars)
                });
                if unproven {
                    // One failed obligation already refutes the plan, and
                    // each failure pays the full search budget — stop at
                    // the first and let the concrete counterexample carry
                    // the diagnostic weight.
                    failed.push(g.name.to_string());
                    break;
                }
            }
        }
        Err(e) => failed.push(format!("obligation construction failed: {e}")),
    }
    if failed.is_empty() {
        return Ok(());
    }
    let mut msg = format!(
        "write plan `{}` ({}): unproven obligation(s): {}",
        plan.site,
        plan.buffer,
        failed.join(", ")
    );
    match counterexample(plan) {
        Some(cx) => msg.push_str(&format!("; counterexample {cx}")),
        None => msg.push_str("; no concrete counterexample found at small shapes (the plan may be sound but outside the prover's fragment)"),
    }
    Err(msg)
}

/// The brute-force concrete model the symbolic proof is checked against:
/// a [`ConcretePlan`] is valid iff its task intervals are pairwise
/// disjoint and their union is exactly `[0, len)`.
pub fn concrete_check(plan: &ConcretePlan) -> Result<(), String> {
    let mut idx: Vec<usize> = (0..plan.tasks.len())
        .filter(|&i| plan.tasks[i].0 < plan.tasks[i].1)
        .collect();
    idx.sort_by_key(|&i| plan.tasks[i]);
    for w in idx.windows(2) {
        let (i, j) = (w[0], w[1]);
        let (s1, e1) = plan.tasks[i];
        let (s2, e2) = plan.tasks[j];
        if s2 < e1 {
            return Err(format!(
                "task {i} writes [{s1}..{e1}) overlapping task {j} writes [{s2}..{e2})"
            ));
        }
    }
    let mut pos = 0usize;
    for &i in &idx {
        let (s, e) = plan.tasks[i];
        if s > pos {
            return Err(format!(
                "coverage gap: no task writes [{pos}..{s}) (task {i} starts at {s})"
            ));
        }
        pos = pos.max(e);
    }
    if pos != plan.len {
        return Err(format!(
            "coverage gap: tasks end at {pos} but the plan covers [0..{})",
            plan.len
        ));
    }
    Ok(())
}

/// Candidate values for the small-shape counterexample sweep.
const SMALL: [i128; 6] = [0, 1, 2, 3, 5, 7];
const MAX_SWEEP: usize = 20_000;

/// Exhaustively instantiates `plan` at small shapes (free parameters
/// from [`SMALL`], all monotone cut tables up to small totals) and
/// returns the first concrete violation, formatted with the shape and
/// the clashing tasks/ranges.
pub fn counterexample(plan: &WritePlan) -> Option<String> {
    let free: Vec<&str> = plan
        .params
        .iter()
        .enumerate()
        .filter(|&(i, p)| i != plan.task && p.derive == Derive::Free)
        .map(|(_, p)| p.name)
        .collect();
    let mut values: Vec<(&str, i128)> = free.iter().map(|&n| (n, 0)).collect();
    let mut budget = MAX_SWEEP;
    sweep(plan, &mut values, 0, &mut budget)
}

fn sweep(
    plan: &WritePlan,
    values: &mut Vec<(&str, i128)>,
    i: usize,
    budget: &mut usize,
) -> Option<String> {
    if *budget == 0 {
        return None;
    }
    if i < values.len() {
        for v in SMALL {
            values[i].1 = v;
            if let Some(cx) = sweep(plan, values, i + 1, budget) {
                return Some(cx);
            }
        }
        return None;
    }
    let shape = || {
        let vs: Vec<String> = values.iter().map(|(n, v)| format!("{n}={v}")).collect();
        format!("{{{}}}", vs.join(", "))
    };
    if plan.cuts.is_empty() {
        *budget = budget.saturating_sub(1);
        if let Ok(c) = plan.try_instantiate(values, &[]) {
            if let Err(e) = concrete_check(&c) {
                return Some(format!("shape {}: {e}", shape()));
            }
        }
        return None;
    }
    // One cut family is all the real plans use; enumerate its monotone
    // tables. (Plans with several families fall back to no sweep.)
    if plan.cuts.len() != 1 {
        return None;
    }
    let resolved = resolve_params(plan, values)?;
    let count = plan.cuts[0].count.eval(&resolved, &[]).ok()?;
    let total = plan.cuts[0].total.eval(&resolved, &[]).ok()?;
    if !(0..=4).contains(&count) || !(0..=5).contains(&total) {
        return None;
    }
    let mut table = vec![0i128; count as usize + 1];
    enumerate_tables(plan, values, &mut table, 1, total, budget, &shape)
}

/// Resolves all non-task parameters (including derived ones) the way
/// `instantiate` does, for evaluating cut-family shapes during the sweep.
fn resolve_params(plan: &WritePlan, values: &[(&str, i128)]) -> Option<Vec<i128>> {
    let mut resolved = Vec::with_capacity(plan.params.len());
    for (i, p) in plan.params.iter().enumerate() {
        let v = if i == plan.task {
            0
        } else {
            match &p.derive {
                Derive::Free => values.iter().find(|(n, _)| *n == p.name)?.1,
                Derive::DivCeil(a, b) => {
                    let a = a.eval(&resolved, &[]).ok()?;
                    let b = b.eval(&resolved, &[]).ok()?;
                    if b <= 0 {
                        return None;
                    }
                    a.div_euclid(b) + i128::from(a.rem_euclid(b) != 0)
                }
            }
        };
        resolved.push(v);
    }
    Some(resolved)
}

#[allow(clippy::too_many_arguments)]
fn enumerate_tables(
    plan: &WritePlan,
    values: &[(&str, i128)],
    table: &mut Vec<i128>,
    i: usize,
    total: i128,
    budget: &mut usize,
    shape: &dyn Fn() -> String,
) -> Option<String> {
    if *budget == 0 {
        return None;
    }
    if i == table.len() {
        if *table.last()? != total {
            return None;
        }
        *budget = budget.saturating_sub(1);
        if let Ok(c) = plan.try_instantiate(values, &[table.as_slice()]) {
            if let Err(e) = concrete_check(&c) {
                return Some(format!("shape {} cuts {table:?}: {e}", shape()));
            }
        }
        return None;
    }
    let lo = table[i - 1];
    for v in lo..=total {
        table[i] = v;
        if let Some(cx) = enumerate_tables(plan, values, table, i + 1, total, budget, shape) {
            return Some(cx);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant3d_nerf::kernels::plan::{con, par, ParamDecl};

    #[test]
    fn chunked_plans_prove() {
        let with_scale = WritePlan::chunked("demo.rs:1 demo", "out", "n", "chunk", Some("w"));
        prove_plan(&with_scale).expect("chunked plan with scale proves");
        let no_scale = WritePlan::chunked("demo.rs:2 demo", "out", "n", "chunk", None);
        prove_plan(&no_scale).expect("chunked plan without scale proves");
    }

    #[test]
    fn cut_partition_plans_prove() {
        let plan = WritePlan::cut_partition("demo.rs:3 demo", "grads", "offs", "levels", "params");
        prove_plan(&plan).expect("cut partition proves");
    }

    #[test]
    fn floor_task_count_is_rejected() {
        // ceil(n/chunk) tasks are required for coverage; a free task
        // count (which admits floor or anything else) must fail the
        // right-edge/empty obligations, with a concrete counterexample.
        let mut plan = WritePlan::chunked("demo.rs:4 demo", "out", "n", "chunk", None);
        let count_idx = plan.params.iter().position(|p| p.name == "tasks").unwrap();
        plan.params[count_idx].derive = Derive::Free;
        let err = prove_plan(&plan).expect_err("unconstrained task count must fail");
        assert!(err.contains("coverage"), "{err}");
        assert!(err.contains("counterexample"), "{err}");
    }

    #[test]
    fn overlapping_plan_is_rejected_with_both_tasks_named() {
        // Each task claims one extra trailing element: adjacent tasks
        // overlap whenever a successor exists.
        let mut plan = WritePlan::chunked("demo.rs:5 demo", "out", "n", "chunk", None);
        plan.end = par(plan.task)
            .add(con(1))
            .mul(par(1))
            .add(con(1))
            .min(par(0));
        let err = prove_plan(&plan).expect_err("overlapping plan must fail");
        assert!(err.contains("tasks-ordered"), "{err}");
        assert!(
            err.contains("overlapping task"),
            "counterexample names both tasks: {err}"
        );
        assert!(err.contains("writes ["), "ranges are shown: {err}");
    }

    #[test]
    fn gapped_plan_is_rejected() {
        // Tasks of `chunk − 1` elements on a `chunk` stride: a gap.
        let mut plan = WritePlan::chunked("demo.rs:6 demo", "out", "n", "chunk", None);
        plan.end = par(plan.task)
            .add(con(1))
            .mul(par(1))
            .sub(con(1))
            .max(con(0))
            .min(par(0));
        let err = prove_plan(&plan).expect_err("gapped plan must fail");
        assert!(err.contains("coverage"), "{err}");
        assert!(err.contains("gap"), "counterexample shows the gap: {err}");
    }

    #[test]
    fn prover_is_sound_on_the_concrete_model() {
        // Every proved plan instantiates cleanly at a grid of shapes —
        // the soundness direction the proptests widen.
        let plan = WritePlan::chunked("demo.rs:7 demo", "out", "n", "chunk", Some("w"));
        prove_plan(&plan).unwrap();
        for n in [0i128, 1, 7, 16, 17, 255, 256, 257, 1000] {
            for chunk in [1i128, 2, 16, 256] {
                for w in [0i128, 1, 3, 32] {
                    let c = plan
                        .try_instantiate(&[("n", n), ("chunk", chunk), ("w", w)], &[])
                        .unwrap();
                    concrete_check(&c).unwrap();
                }
            }
        }
    }

    #[test]
    fn unbounded_sentinel_param_is_not_upper_bounded() {
        // A param with the UNBOUNDED sentinel gets no hi fact, so this
        // plan (task t writes [t, t+1), count = n) still proves.
        let plan = WritePlan {
            site: "demo.rs:8 demo",
            buffer: "out",
            params: vec![
                ParamDecl {
                    name: "n",
                    lo: 0,
                    hi: con(UNBOUNDED),
                    derive: Derive::Free,
                },
                ParamDecl {
                    name: "t",
                    lo: 0,
                    hi: par(0).sub(con(1)),
                    derive: Derive::Free,
                },
            ],
            cuts: Vec::new(),
            task: 1,
            count: par(0),
            start: par(1),
            end: par(1).add(con(1)),
            scale: con(1),
            total: par(0),
            total_is_top_cut: false,
        };
        prove_plan(&plan).expect("unit-stride identity plan proves");
    }
}
