//! Regenerates the paper's tab02Tab. 02 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::tab02::run(instant3d_bench::quick_requested());
}
