//! Regenerates the paper's tab04Tab. 04 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::tab04::run(instant3d_bench::quick_requested());
}
