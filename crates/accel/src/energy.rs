//! 28 nm energy and area models (Fig. 15 of the paper).
//!
//! Per-operation energies are fitted constants: they are chosen so the
//! full Instant-3D configuration lands at the paper's reported operating
//! point (6.8 mm², ~1.9 W at 800 MHz with grid cores dominating both area
//! and energy). Each constant is in the range published for 28 nm SRAM /
//! fp16 arithmetic; the calibration anchors are documented per field.

/// Per-operation energy constants (picojoules) and static power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One 4-byte hash-table SRAM read, including bank crossbar and FRM
    /// traversal. Anchor: grid cores ≈ 80 % of total energy (Fig. 15).
    pub sram_read_pj: f64,
    /// One 4-byte hash-table SRAM write (incl. BUM buffer logic).
    pub sram_write_pj: f64,
    /// One Eq.-3 hash evaluation (two 32-bit multiplies + xors + mod).
    pub hash_pj: f64,
    /// One fp16 multiply-accumulate in the MLP units.
    pub mac_pj: f64,
    /// One byte moved to/from LPDDR4 DRAM.
    pub dram_pj_per_byte: f64,
    /// Static/leakage power in watts (clock tree, idle SRAM, I/O).
    pub static_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            sram_read_pj: 40.0,
            sram_write_pj: 80.0,
            hash_pj: 2.0,
            mac_pj: 0.18,
            dram_pj_per_byte: 40.0,
            static_w: 1.0,
        }
    }
}

/// Event counts for one simulated interval.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyEvents {
    /// Hash-table SRAM reads.
    pub sram_reads: f64,
    /// Hash-table SRAM writes (after BUM merging).
    pub sram_writes: f64,
    /// Hash-function evaluations.
    pub hash_ops: f64,
    /// fp16 MACs in the MLP units.
    pub macs: f64,
    /// DRAM bytes moved.
    pub dram_bytes: f64,
}

/// Energy of an interval, split by component (joules).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Grid-core energy: SRAM traffic + hash units + interpolation.
    pub grid_cores_j: f64,
    /// MLP-unit energy.
    pub mlp_j: f64,
    /// DRAM interface energy.
    pub dram_j: f64,
    /// Static/leakage over the interval.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.grid_cores_j + self.mlp_j + self.dram_j + self.static_j
    }

    /// Grid-core fraction of dynamic energy (the Fig. 15 "81 %" number).
    pub fn grid_fraction_dynamic(&self) -> f64 {
        let dynamic = self.grid_cores_j + self.mlp_j;
        if dynamic <= 0.0 {
            return 0.0;
        }
        self.grid_cores_j / dynamic
    }
}

impl EnergyModel {
    /// Energy of `events` over `seconds` of wall-clock time.
    pub fn energy(&self, events: &EnergyEvents, seconds: f64) -> EnergyBreakdown {
        let pj = 1e-12;
        EnergyBreakdown {
            grid_cores_j: (events.sram_reads * self.sram_read_pj
                + events.sram_writes * self.sram_write_pj
                + events.hash_ops * self.hash_pj)
                * pj,
            mlp_j: events.macs * self.mac_pj * pj,
            dram_j: events.dram_bytes * self.dram_pj_per_byte * pj,
            static_j: self.static_w * seconds,
        }
    }
}

/// Component areas of the accelerator in mm² (28 nm), matching the Fig. 15
/// floorplan: four grid cores (hash-table SRAM banks, FRM units, BUM
/// units, hash/interpolation logic) plus the MLP units and reconfiguration
/// fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Hash-table SRAM banks (1 MB across the four cores) + coordinate
    /// buffers (0.5 MB) — dominated by the 1.5 MB of total SRAM.
    pub sram_mm2: f64,
    /// Seven FRM units (4× B8, 2× B16, 1× B32).
    pub frm_mm2: f64,
    /// Four BUM units (16-entry CAM-style buffers each).
    pub bum_mm2: f64,
    /// Hash-function + interpolation/gradient compute units.
    pub grid_logic_mm2: f64,
    /// Systolic array + multiplier-adder-tree MLP units and their buffers.
    pub mlp_mm2: f64,
    /// Multi-core-fusion reconfiguration fabric and I/O.
    pub reconfig_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            sram_mm2: 2.45,
            frm_mm2: 1.22, // ≈ 18 % of total, per Fig. 15
            bum_mm2: 0.48,
            grid_logic_mm2: 1.15,
            mlp_mm2: 1.30, // ≈ 19-22 % of total
            reconfig_mm2: 0.20,
        }
    }
}

impl AreaModel {
    /// Total die area (paper: 6.8 mm²).
    pub fn total(&self) -> f64 {
        self.sram_mm2
            + self.frm_mm2
            + self.bum_mm2
            + self.grid_logic_mm2
            + self.mlp_mm2
            + self.reconfig_mm2
    }

    /// Grid-core area (everything except MLP and reconfig fabric).
    pub fn grid_cores(&self) -> f64 {
        self.sram_mm2 + self.frm_mm2 + self.bum_mm2 + self.grid_logic_mm2
    }

    /// Grid-core fraction of total area (Fig. 15: 78 %).
    pub fn grid_fraction(&self) -> f64 {
        self.grid_cores() / self.total()
    }

    /// Labelled component list for table output.
    pub fn components(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("hash-table + coord SRAM", self.sram_mm2),
            ("FRM units (4xB8 + 2xB16 + 1xB32)", self.frm_mm2),
            ("BUM units (4x 16-entry)", self.bum_mm2),
            ("hash + interpolation logic", self.grid_logic_mm2),
            ("MLP units (systolic + tree)", self.mlp_mm2),
            ("reconfiguration fabric", self.reconfig_mm2),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_total_matches_paper() {
        let a = AreaModel::default();
        assert!(
            (a.total() - 6.8).abs() < 0.05,
            "total area {} should be ≈ 6.8 mm²",
            a.total()
        );
    }

    #[test]
    fn grid_cores_dominate_area() {
        let a = AreaModel::default();
        let f = a.grid_fraction();
        assert!(
            (0.70..=0.85).contains(&f),
            "grid-core area fraction {f} should be ≈ 0.78"
        );
    }

    #[test]
    fn component_list_sums_to_total() {
        let a = AreaModel::default();
        let sum: f64 = a.components().iter().map(|(_, v)| v).sum();
        assert!((sum - a.total()).abs() < 1e-9);
    }

    #[test]
    fn energy_accumulates_by_component() {
        let m = EnergyModel::default();
        let ev = EnergyEvents {
            sram_reads: 1e6,
            sram_writes: 1e5,
            hash_ops: 1e6,
            macs: 1e7,
            dram_bytes: 1e6,
        };
        let e = m.energy(&ev, 0.001);
        assert!(e.grid_cores_j > 0.0);
        assert!(e.mlp_j > 0.0);
        assert!(e.dram_j > 0.0);
        assert!((e.static_j - 1.0e-3).abs() < 1e-9);
        assert!((e.total() - (e.grid_cores_j + e.mlp_j + e.dram_j + e.static_j)).abs() < 1e-15);
    }

    #[test]
    fn zero_events_only_leak() {
        let m = EnergyModel::default();
        let e = m.energy(&EnergyEvents::default(), 1.0);
        assert_eq!(e.grid_cores_j, 0.0);
        assert_eq!(e.mlp_j, 0.0);
        assert!((e.total() - m.static_w).abs() < 1e-12);
    }

    #[test]
    fn grid_fraction_dynamic() {
        let b = EnergyBreakdown {
            grid_cores_j: 8.0,
            mlp_j: 2.0,
            dram_j: 5.0,
            static_j: 5.0,
        };
        assert!((b.grid_fraction_dynamic() - 0.8).abs() < 1e-12);
    }
}
