//! Samplers for Steps ① and ③: random pixel batches across training views
//! and stratified point sampling along rays.

use crate::camera::Camera;
use crate::image::RgbImage;
use crate::math::{Aabb, Ray, Vec3};
use crate::occupancy::OccupancyGrid;
use rand::Rng;

/// A `(t, δt)` segment along a ray where a sample should be taken.
pub type Segment = (f32, f32);

/// Stratified sampling of `n` segments across the ray's intersection with
/// `aabb`. With `jitter`, each sample is placed uniformly within its
/// stratum; without, at the stratum center (deterministic).
///
/// Returns an empty vector when the ray misses the box.
pub fn sample_segments<R: Rng + ?Sized>(
    ray: &Ray,
    aabb: &Aabb,
    n: usize,
    jitter: Option<&mut R>,
) -> Vec<Segment> {
    let mut out = Vec::new();
    sample_segments_into(ray, aabb, n, jitter, &mut out);
    out
}

/// Allocation-free [`sample_segments`]: clears `out` and refills it. The
/// RNG consumption is identical, so both variants produce the same stream.
pub fn sample_segments_into<R: Rng + ?Sized>(
    ray: &Ray,
    aabb: &Aabb,
    n: usize,
    mut jitter: Option<&mut R>,
    out: &mut Vec<Segment>,
) {
    out.clear();
    let Some((t0, t1)) = aabb.intersect(ray) else {
        return;
    };
    if t1 <= t0 || n == 0 {
        return;
    }
    let dt = (t1 - t0) / n as f32;
    out.reserve(n);
    for k in 0..n {
        let u = match jitter.as_deref_mut() {
            Some(rng) => rng.gen_range(0.0..1.0),
            None => 0.5,
        };
        out.push((t0 + (k as f32 + u) * dt, dt));
    }
}

/// Like [`sample_segments`], but drops segments whose sample point falls in
/// unoccupied space according to `occ` — Instant-NGP's empty-space skipping.
/// Each surviving sample costs one packed-bitfield probe
/// ([`OccupancyGrid::occupied_at`]: a Morton interleave + one word load).
pub fn sample_segments_occupancy<R: Rng + ?Sized>(
    ray: &Ray,
    aabb: &Aabb,
    n: usize,
    occ: &OccupancyGrid,
    jitter: Option<&mut R>,
) -> Vec<Segment> {
    let mut out = Vec::new();
    sample_segments_occupancy_into(ray, aabb, n, occ, jitter, &mut out);
    out
}

/// Allocation-free [`sample_segments_occupancy`]: clears `out` and refills
/// it with only the segments whose sample points land in occupied cells.
/// RNG consumption matches [`sample_segments_into`] (jitter is drawn for
/// every stratum, culled or not), so culling never perturbs the stream —
/// the property the trainer's batched sampling loop relies on.
pub fn sample_segments_occupancy_into<R: Rng + ?Sized>(
    ray: &Ray,
    aabb: &Aabb,
    n: usize,
    occ: &OccupancyGrid,
    jitter: Option<&mut R>,
    out: &mut Vec<Segment>,
) {
    sample_segments_into(ray, aabb, n, jitter, out);
    out.retain(|&(t, _)| occ.occupied_at(ray.at(t)));
}

/// One supervised ray: the pixel's camera ray plus its ground-truth color.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainRay {
    /// The camera ray through the sampled pixel.
    pub ray: Ray,
    /// Ground-truth RGB of that pixel.
    pub target: Vec3,
    /// Index of the view the pixel came from.
    pub view: usize,
}

/// Step ① — samples a batch of random pixels (with their rays and ground
/// truth colors) from a set of posed training images.
///
/// # Panics
///
/// Panics if `views` is empty, images don't match their cameras, or the
/// camera/image counts differ.
pub fn sample_pixel_batch<R: Rng + ?Sized>(
    cameras: &[Camera],
    images: &[RgbImage],
    batch: usize,
    rng: &mut R,
) -> Vec<TrainRay> {
    let mut out = Vec::new();
    sample_pixel_batch_into(cameras, images, batch, rng, &mut out);
    out
}

/// Allocation-free [`sample_pixel_batch`]: clears `out` and refills it.
/// The RNG consumption is identical, so both variants produce the same
/// batch for the same generator state.
///
/// # Panics
///
/// Same contract as [`sample_pixel_batch`].
pub fn sample_pixel_batch_into<R: Rng + ?Sized>(
    cameras: &[Camera],
    images: &[RgbImage],
    batch: usize,
    rng: &mut R,
    out: &mut Vec<TrainRay>,
) {
    assert!(!cameras.is_empty(), "need at least one training view");
    assert_eq!(cameras.len(), images.len(), "camera/image count mismatch");
    for (c, i) in cameras.iter().zip(images) {
        assert_eq!(
            (c.width, c.height),
            (i.width(), i.height()),
            "image/camera size mismatch"
        );
    }
    out.clear();
    out.reserve(batch);
    for _ in 0..batch {
        let view = rng.gen_range(0..cameras.len());
        let cam = &cameras[view];
        let x = rng.gen_range(0..cam.width);
        let y = rng.gen_range(0..cam.height);
        out.push(TrainRay {
            ray: cam.pixel_center_ray(x, y),
            target: images[view].get(x, y),
            view,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_segments_are_stratum_centers() {
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
        let segs = sample_segments::<StdRng>(&ray, &Aabb::UNIT, 4, None);
        assert_eq!(segs.len(), 4);
        // Box spans t ∈ [1, 2]; strata centers at 1.125, 1.375, ...
        assert!((segs[0].0 - 1.125).abs() < 1e-5);
        assert!((segs[3].0 - 1.875).abs() < 1e-5);
        for &(_, dt) in &segs {
            assert!((dt - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn jittered_segments_stay_in_strata() {
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
        let mut rng = StdRng::seed_from_u64(11);
        let segs = sample_segments(&ray, &Aabb::UNIT, 8, Some(&mut rng));
        for (k, &(t, dt)) in segs.iter().enumerate() {
            let lo = 1.0 + k as f32 * dt;
            assert!(
                t >= lo && t <= lo + dt,
                "sample {k} at {t} outside [{lo}, {}]",
                lo + dt
            );
        }
    }

    #[test]
    fn miss_returns_empty() {
        let ray = Ray::new(Vec3::new(-1.0, 5.0, 0.5), Vec3::X);
        assert!(sample_segments::<StdRng>(&ray, &Aabb::UNIT, 8, None).is_empty());
    }

    #[test]
    fn occupancy_filter_drops_empty_space() {
        // Occupied only in the x < 0.5 half of the unit cube.
        let mut occ = OccupancyGrid::new(Aabb::UNIT, 8);
        occ.update_from_fn(|p| if p.x < 0.5 { 1.0 } else { 0.0 }, 0.5);
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
        let segs = sample_segments_occupancy::<StdRng>(&ray, &Aabb::UNIT, 64, &occ, None);
        assert!(!segs.is_empty());
        // All surviving samples lie in the occupied half: t in [1.0, 1.5).
        for &(t, _) in &segs {
            assert!(t < 1.5 + 1e-4, "sample at t={t} should have been culled");
        }
        // Roughly half the samples survive.
        assert!(
            segs.len() >= 24 && segs.len() <= 40,
            "{} survived",
            segs.len()
        );
    }

    #[test]
    fn occupancy_into_matches_allocating_variant_and_rng_stream() {
        let mut occ = OccupancyGrid::new(Aabb::UNIT, 8);
        occ.update_from_fn(|p| if p.x < 0.5 { 1.0 } else { 0.0 }, 0.5);
        let ray = Ray::new(Vec3::new(-1.0, 0.45, 0.55), Vec3::X);
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let alloc = sample_segments_occupancy(&ray, &Aabb::UNIT, 32, &occ, Some(&mut rng_a));
        let mut into = Vec::new();
        sample_segments_occupancy_into(&ray, &Aabb::UNIT, 32, &occ, Some(&mut rng_b), &mut into);
        assert_eq!(alloc, into);
        // Culling consumed the same RNG stream as unculled sampling: the
        // next draws agree.
        assert_eq!(rng_a.gen_range(0.0f32..1.0), rng_b.gen_range(0.0f32..1.0));
    }

    #[test]
    fn pixel_batch_returns_requested_size_and_valid_targets() {
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, 2.0), Vec3::ZERO, Vec3::Y, 1.0, 8, 8);
        let img = RgbImage::from_fn(8, 8, |x, y| Vec3::new(x as f32 / 8.0, y as f32 / 8.0, 0.0));
        let mut rng = StdRng::seed_from_u64(5);
        let batch = sample_pixel_batch(&[cam], std::slice::from_ref(&img), 32, &mut rng);
        assert_eq!(batch.len(), 32);
        for tr in &batch {
            assert_eq!(tr.view, 0);
            assert!(tr.target.x < 1.0 && tr.target.y < 1.0);
            assert!((tr.ray.dir.norm() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn pixel_batch_covers_multiple_views() {
        let cams: Vec<Camera> = (0..4)
            .map(|i| {
                Camera::look_at(
                    Vec3::new(i as f32, 0.0, 2.0),
                    Vec3::ZERO,
                    Vec3::Y,
                    1.0,
                    4,
                    4,
                )
            })
            .collect();
        let imgs: Vec<RgbImage> = (0..4).map(|_| RgbImage::new(4, 4)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let batch = sample_pixel_batch(&cams, &imgs, 256, &mut rng);
        let mut seen = [false; 4];
        for tr in &batch {
            seen[tr.view] = true;
        }
        assert!(seen.iter().all(|&s| s), "all views should be sampled");
    }

    #[test]
    #[should_panic]
    fn mismatched_camera_image_sizes_panic() {
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, 2.0), Vec3::ZERO, Vec3::Y, 1.0, 8, 8);
        let img = RgbImage::new(4, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_pixel_batch(&[cam], &[img], 1, &mut rng);
    }
}
