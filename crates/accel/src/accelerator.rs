//! Top-level analytic accelerator model.
//!
//! Evaluates a per-iteration [`PipelineWorkload`] against the accelerator
//! configuration with a chosen [`FeatureSet`], producing cycle counts,
//! runtime, energy and power. Microarchitectural throughput factors
//! (FRM/baseline SRAM utilisation, BUM write ratio) default to values
//! measured by the trace-driven simulators in [`crate::frm`] and
//! [`crate::bum`] on real training traces, and can be overridden with
//! measured numbers.
//!
//! Timing model: the grid cores, MLP units and DRAM interface operate as a
//! pipeline, so iteration latency is the *maximum* of the three phase
//! times (plus the table-swap traffic when the decomposed branches
//! time-share the SRAM).

use crate::config::AccelConfig;
use crate::dram::DramModel;
use crate::energy::{EnergyBreakdown, EnergyEvents, EnergyModel};
use crate::fusion::FusionMode;
use instant3d_core::PipelineWorkload;

/// Which of the paper's three hardware techniques are enabled — the knobs
/// behind the Fig. 17 speedup decomposition and Fig. 18 ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSet {
    /// Feed-forward read mapper (§4.4).
    pub frm: bool,
    /// Back-propagation update merger (§4.5).
    pub bum: bool,
    /// Multi-core-fusion reconfigurable scheduling (§4.6).
    pub fusion: bool,
}

impl FeatureSet {
    /// All techniques enabled (the shipped Instant-3D accelerator).
    pub fn full() -> Self {
        FeatureSet {
            frm: true,
            bum: true,
            fusion: true,
        }
    }

    /// No techniques: a naive fixed-mode accelerator.
    pub fn none() -> Self {
        FeatureSet {
            frm: false,
            bum: false,
            fusion: false,
        }
    }
}

/// Simulation output for one workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Latency-determining cycles per training iteration.
    pub cycles_per_iter: f64,
    /// Seconds per iteration.
    pub seconds_per_iter: f64,
    /// Total runtime for the workload's iteration count.
    pub seconds_total: f64,
    /// Grid-core SRAM cycles per iteration (FF + BP).
    pub grid_cycles: f64,
    /// MLP-unit cycles per iteration.
    pub mlp_cycles: f64,
    /// DRAM-transfer cycles per iteration (spills + table swaps).
    pub dram_cycles: f64,
    /// DRAM bytes moved per iteration.
    pub dram_bytes_per_iter: f64,
    /// SRAM writes per iteration after BUM merging.
    pub sram_writes_per_iter: f64,
    /// Total energy over the run (joules).
    pub energy_total_j: f64,
    /// Average power (watts).
    pub avg_power_w: f64,
    /// Energy breakdown over the run.
    pub energy_breakdown: EnergyBreakdown,
}

impl SimReport {
    /// Which phase bounds the iteration latency.
    pub fn bottleneck(&self) -> &'static str {
        if self.dram_cycles >= self.grid_cycles && self.dram_cycles >= self.mlp_cycles {
            "dram"
        } else if self.grid_cycles >= self.mlp_cycles {
            "grid-sram"
        } else {
            "mlp"
        }
    }
}

/// The analytic accelerator model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accelerator {
    /// Hardware configuration.
    pub cfg: AccelConfig,
    /// Energy constants.
    pub energy: EnergyModel,
    /// DRAM model.
    pub dram: DramModel,
    /// SRAM bank utilisation achieved by the FRM (trace-measured; the
    /// corner-burst streams of §4.2 reach ≈ 0.8 with a 16-deep window).
    pub frm_utilization: f64,
    /// SRAM bank utilisation without the FRM (25–50 % per §4.4; the
    /// trace-driven baseline lands ≈ 0.3).
    pub baseline_utilization: f64,
    /// SRAM writes per BP update with the BUM enabled (Fig. 10's ~200
    /// unique per 1000 accesses ⇒ ≈ 0.2–0.3).
    pub bum_write_ratio: f64,
    /// Systolic-array utilisation on the paper's MLP shapes.
    pub mlp_utilization: f64,
    /// Host-SoC seconds per iteration for Steps ①/②/④/⑤ (pixel sampling,
    /// ray setup, compositing, loss), which run on the host CPU/GPU of
    /// Fig. 11 partially overlapped with the accelerator. Calibrated so
    /// the full configuration reproduces the paper's 1.6 s / 45× headline.
    pub host_overhead_s_per_iter: f64,
}

impl Default for Accelerator {
    fn default() -> Self {
        Accelerator {
            cfg: AccelConfig::default(),
            energy: EnergyModel::default(),
            dram: DramModel {
                // Fully-random 32 B transactions with read-modify-write
                // turnarounds achieve a small fraction of peak LPDDR4
                // bandwidth; calibrated so the naive (no-technique) NGP
                // config matches the Xavier-NX-class runtime (Tab. 5).
                random_efficiency: 0.12,
                ..DramModel::default()
            },
            frm_utilization: 0.80,
            baseline_utilization: 0.30,
            bum_write_ratio: 0.25,
            mlp_utilization: 0.85,
            host_overhead_s_per_iter: 1.2e-3,
        }
    }
}

/// Per-branch workload split derived from a [`PipelineWorkload`].
#[derive(Debug, Clone, Copy)]
struct Branch {
    table_bytes: usize,
    reads_ff: f64,
    writes_bp: f64,
}

impl Accelerator {
    /// Systolic MACs per cycle (the 64×32 fp16 array plus the adder tree).
    fn mlp_macs_per_cycle(&self) -> f64 {
        (self.cfg.systolic_rows * self.cfg.systolic_cols + self.cfg.tree_width) as f64
    }

    fn split_branches(w: &PipelineWorkload) -> Vec<Branch> {
        let per_grid_reads = w.points_per_iter * w.levels as f64 * 8.0;
        if w.color_table_bytes == 0 {
            vec![Branch {
                table_bytes: w.density_table_bytes,
                reads_ff: w.grid_reads_ff_per_iter,
                writes_bp: w.grid_writes_bp_per_iter,
            }]
        } else {
            let density_writes = per_grid_reads.min(w.grid_writes_bp_per_iter);
            vec![
                Branch {
                    table_bytes: w.density_table_bytes,
                    reads_ff: per_grid_reads,
                    writes_bp: density_writes,
                },
                Branch {
                    table_bytes: w.color_table_bytes,
                    reads_ff: (w.grid_reads_ff_per_iter - per_grid_reads).max(0.0),
                    writes_bp: (w.grid_writes_bp_per_iter - density_writes).max(0.0),
                },
            ]
        }
    }

    /// Simulates a workload under a feature set.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn simulate(&self, w: &PipelineWorkload, feats: FeatureSet) -> SimReport {
        self.cfg
            .validate()
            .unwrap_or_else(|e| panic!("invalid accelerator config: {e}"));
        let branches = Self::split_branches(w);
        let total_table_bytes: usize = branches.iter().map(|b| b.table_bytes).sum();
        let fused_capacity = self.cfg.total_hash_sram_bytes();

        let read_util = if feats.frm {
            self.frm_utilization
        } else {
            self.baseline_utilization
        };

        let mut grid_cycles = 0.0f64;
        let mut dram_bytes = 0.0f64;
        let mut sram_reads = 0.0f64;
        let mut sram_writes = 0.0f64;

        for b in &branches {
            // Residency + parallelism under the chosen scheduling.
            let (banks, groups, miss) = if feats.fusion {
                match FusionMode::for_table_bytes(b.table_bytes, &self.cfg) {
                    Some(mode) => (
                        mode.banks(&self.cfg) as f64,
                        mode.parallel_groups(&self.cfg) as f64,
                        0.0, // the branch's table is fully resident in its mode
                    ),
                    None => (
                        self.cfg.total_banks() as f64,
                        1.0,
                        DramModel::miss_fraction(b.table_bytes, fused_capacity),
                    ),
                }
            } else {
                // Fixed Level-2-style mode: one 32-bank group, all tables
                // sharing the 1 MB SRAM simultaneously.
                (
                    self.cfg.total_banks() as f64,
                    1.0,
                    DramModel::miss_fraction(total_table_bytes, fused_capacity),
                )
            };

            // Feed-forward reads.
            let ff_cycles = b.reads_ff / (banks * read_util) / groups;
            sram_reads += b.reads_ff * (1.0 - miss);
            dram_bytes += b.reads_ff * miss * self.cfg.dram_burst_bytes as f64;

            // Back-propagation updates.
            let (writes, bp_accesses) = if feats.bum {
                let merged = b.writes_bp * self.bum_write_ratio;
                (merged, merged)
            } else {
                // Read-modify-write per update.
                (b.writes_bp, 2.0 * b.writes_bp)
            };
            let bp_cycles = bp_accesses / (banks * read_util) / groups;
            sram_writes += writes * (1.0 - miss);
            // A missed update costs a read burst + a write burst.
            dram_bytes += writes * miss * 2.0 * self.cfg.dram_burst_bytes as f64;

            grid_cycles += ff_cycles + bp_cycles;
        }

        // Table-swap traffic when the branches time-share the SRAM.
        if feats.fusion && total_table_bytes > fused_capacity && branches.len() > 1 {
            dram_bytes += total_table_bytes as f64;
        }

        // MLP phase.
        let macs = w.mlp_flops_per_iter / 2.0;
        let mlp_cycles = macs / (self.mlp_macs_per_cycle() * self.mlp_utilization);

        // DRAM phase.
        let dram_cycles = self.dram.transfer_cycles(dram_bytes, self.cfg.clock_hz);

        // Pipelined phases: latency = max, plus the host-SoC share.
        let cycles_per_iter = grid_cycles.max(mlp_cycles).max(dram_cycles);
        let seconds_per_iter =
            cycles_per_iter * self.cfg.cycle_time() + self.host_overhead_s_per_iter;
        let seconds_total = seconds_per_iter * w.iterations;

        // Energy.
        let hash_ops = w.grid_reads_ff_per_iter + w.grid_writes_bp_per_iter;
        let events = EnergyEvents {
            sram_reads: sram_reads * w.iterations,
            sram_writes: sram_writes * w.iterations,
            hash_ops: hash_ops * w.iterations,
            macs: macs * w.iterations,
            dram_bytes: dram_bytes * w.iterations,
        };
        let breakdown = self.energy.energy(&events, seconds_total);
        let energy_total = breakdown.total();

        SimReport {
            cycles_per_iter,
            seconds_per_iter,
            seconds_total,
            grid_cycles,
            mlp_cycles,
            dram_cycles,
            dram_bytes_per_iter: dram_bytes,
            sram_writes_per_iter: sram_writes,
            energy_total_j: energy_total,
            avg_power_w: if seconds_total > 0.0 {
                energy_total / seconds_total
            } else {
                0.0
            },
            energy_breakdown: breakdown,
        }
    }

    /// The Fig. 17 waterfall: runtimes of the four staged configurations
    /// (NGP algorithm + no techniques → Instant-3D algorithm → +FRM/BUM →
    /// +fusion), at the same iteration count.
    pub fn speedup_waterfall(&self, iterations: f64) -> [(String, SimReport); 4] {
        let ngp = PipelineWorkload::paper_scale_instant_ngp(iterations);
        let i3d = PipelineWorkload::paper_scale_instant3d(iterations);
        [
            (
                "Instant-NGP algo, no FRM/BUM/fusion".to_string(),
                self.simulate(&ngp, FeatureSet::none()),
            ),
            (
                "+ Instant-3D algorithm".to_string(),
                self.simulate(&i3d, FeatureSet::none()),
            ),
            (
                "+ FRM & BUM".to_string(),
                self.simulate(
                    &i3d,
                    FeatureSet {
                        frm: true,
                        bum: true,
                        fusion: false,
                    },
                ),
            ),
            (
                "+ multi-core fusion".to_string(),
                self.simulate(&i3d, FeatureSet::full()),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel() -> Accelerator {
        Accelerator::default()
    }

    fn i3d(iterations: f64) -> PipelineWorkload {
        PipelineWorkload::paper_scale_instant3d(iterations)
    }

    fn ngp(iterations: f64) -> PipelineWorkload {
        PipelineWorkload::paper_scale_instant_ngp(iterations)
    }

    #[test]
    fn full_featureset_hits_instant_operating_point() {
        // The headline: ~1.6 s per scene at ~1.9 W (256 iterations to
        // PSNR 25).
        let r = accel().simulate(&i3d(256.0), FeatureSet::full());
        assert!(
            (0.5..=3.5).contains(&r.seconds_total),
            "runtime {} s should be instant-scale (paper: 1.6 s)",
            r.seconds_total
        );
        assert!(
            (1.2..=2.6).contains(&r.avg_power_w),
            "power {} W should be ≈ 1.9 W",
            r.avg_power_w
        );
    }

    #[test]
    fn features_monotonically_help() {
        let a = accel();
        let w = i3d(256.0);
        let none = a.simulate(&w, FeatureSet::none()).seconds_total;
        let frm_only = a
            .simulate(
                &w,
                FeatureSet {
                    frm: true,
                    bum: false,
                    fusion: false,
                },
            )
            .seconds_total;
        let frm_bum = a
            .simulate(
                &w,
                FeatureSet {
                    frm: true,
                    bum: true,
                    fusion: false,
                },
            )
            .seconds_total;
        let full = a.simulate(&w, FeatureSet::full()).seconds_total;
        assert!(frm_only <= none);
        assert!(frm_bum <= frm_only);
        assert!(full < frm_bum);
    }

    #[test]
    fn waterfall_is_monotone_and_large() {
        let a = accel();
        let stages = a.speedup_waterfall(256.0);
        for pair in stages.windows(2) {
            assert!(
                pair[1].1.seconds_total <= pair[0].1.seconds_total,
                "stage {} should not be slower than its predecessor",
                pair[1].0
            );
        }
        let total_speedup = stages[0].1.seconds_total / stages[3].1.seconds_total;
        assert!(
            total_speedup > 10.0,
            "end-to-end speedup {total_speedup} should be tens of ×"
        );
    }

    #[test]
    fn ngp_table_spills_instant3d_fits() {
        let a = accel();
        let r_ngp = a.simulate(&ngp(1.0), FeatureSet::full());
        let r_i3d = a.simulate(&i3d(1.0), FeatureSet::full());
        assert!(
            r_ngp.dram_bytes_per_iter > r_i3d.dram_bytes_per_iter,
            "the 2 MB NGP table must spill more than the decomposed grids"
        );
    }

    #[test]
    fn bum_reduces_sram_writes() {
        let a = accel();
        let w = i3d(1.0);
        let with = a.simulate(&w, FeatureSet::full());
        let without = a.simulate(
            &w,
            FeatureSet {
                frm: true,
                bum: false,
                fusion: true,
            },
        );
        assert!(with.sram_writes_per_iter < 0.5 * without.sram_writes_per_iter);
    }

    #[test]
    fn report_bottleneck_labels() {
        let a = accel();
        let naive = a.simulate(&ngp(1.0), FeatureSet::none());
        assert_eq!(naive.bottleneck(), "dram", "spilling config is DRAM-bound");
        let full = a.simulate(&i3d(1.0), FeatureSet::full());
        assert_ne!(
            full.bottleneck(),
            "dram",
            "resident config is not DRAM-bound"
        );
    }

    #[test]
    fn energy_scales_with_iterations() {
        let a = accel();
        let e1 = a.simulate(&i3d(100.0), FeatureSet::full()).energy_total_j;
        let e2 = a.simulate(&i3d(200.0), FeatureSet::full()).energy_total_j;
        assert!((e2 / e1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn grid_cores_dominate_dynamic_energy() {
        // Fig. 15: grid cores ≈ 81 % of energy.
        let r = accel().simulate(&i3d(256.0), FeatureSet::full());
        let f = r.energy_breakdown.grid_fraction_dynamic();
        assert!(
            (0.6..=0.95).contains(&f),
            "grid-core dynamic-energy fraction {f} should dominate"
        );
    }
}
