//! The fleet scheduler: round-robin slices of many jobs over shared
//! runners, workspaces and checkpoint cache.
//!
//! Concurrency model: `concurrency` runner tasks are spawned into one
//! `rayon::scope` on the shared work-stealing pool. Each runner loops —
//! pop a job from the queue, train it for `slice_iters` iterations (each
//! iteration is itself a lazily-split parallel region on the same pool),
//! park its scratch, requeue it — until the queue drains. Slicing plus
//! the scheduler's periodic injector poll is what keeps a big scene from
//! starving small ones: every job gets back into the queue after a
//! bounded amount of work, and every runner's regions interleave on the
//! same workers.

use crate::job::{JobSpec, SceneJob};
use crate::pool::WorkspacePool;
use crate::store::CheckpointStore;
use instant3d_core::WorkloadStats;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Scheduler knobs. The defaults suit a demo fleet of ~8 small scenes.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Concurrent runner tasks (jobs training at the same time). The
    /// queue serializes beyond this; extra concurrency beyond the worker
    /// count just interleaves on the same workers.
    pub concurrency: usize,
    /// Iterations a job trains per scheduling slice before requeueing.
    pub slice_iters: u64,
    /// LRU capacity of the checkpoint cache (see [`CheckpointStore`]).
    pub max_resident_checkpoints: usize,
    /// Pin the worker-pool size for the whole run (`None` = ambient).
    /// Job determinism does not depend on this — it is a throughput knob.
    pub threads: Option<usize>,
    /// Tiles of progressive preview each job renders after every slice
    /// (`0` = no previews). Previews go through the tile renderer with
    /// occupancy-guided sampling, on workspaces from the same shared
    /// pool as the training slices; they consume no job randomness and
    /// never perturb training results.
    pub preview_tiles_per_slice: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            concurrency: 4,
            slice_iters: 16,
            max_resident_checkpoints: 8,
            threads: None,
            preview_tiles_per_slice: 0,
        }
    }
}

/// Per-job outcome.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The spec's name.
    pub name: String,
    /// Iterations executed (== the spec's budget).
    pub iterations: u64,
    /// Loss of the final training step.
    pub final_loss: f32,
    /// The job's workload counters, with the workspace-pool counters
    /// populated by the serve layer (allocated = pool misses charged to
    /// this job, recycled = pool hits).
    pub stats: WorkloadStats,
    /// Checkpoints written (cadence + final).
    pub checkpoints_written: u64,
    /// `BatchWorkspace`s this job's trainer minted (pool misses).
    pub batch_allocated: u64,
    /// Slices this job ran on a pooled `BatchWorkspace`.
    pub batch_recycled: u64,
    /// Whether the job booted on a recycled `OccupancyWorkspace`.
    pub occ_recycled: bool,
    /// Budgeted preview frames the job rendered (one per slice when the
    /// fleet's `preview_tiles_per_slice` is non-zero).
    pub preview_frames: u64,
    /// Preview tiles rendered across all of the job's slices.
    pub preview_tiles: u64,
    /// Wall-clock nanoseconds the job spent owned by a runner (slices +
    /// previews; queue wait excluded). Telemetry for fleet-balance
    /// dashboards — never fed back into scheduling, so results stay
    /// independent of it.
    pub busy_nanos: u64,
    /// The final checkpoint — always returned here even if the LRU cache
    /// evicted it.
    pub final_checkpoint: Vec<u8>,
}

/// Fleet-level telemetry: per-job [`WorkloadStats`] aggregated in total
/// and grouped by kernel backend/tier provenance.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Jobs retired.
    pub jobs: usize,
    /// All jobs' counters merged (backend/tier labelled `"fleet"` /
    /// `"mixed"` — a fleet may mix backends). Includes the workspace
    /// pool counters: after warmup, `workspaces_allocated` stays flat
    /// while `workspaces_recycled` grows with every slice.
    pub total: WorkloadStats,
    /// Counters merged per (backend, tier) group, labelled with that
    /// group's provenance — lossy-tier work stays separable from strict.
    pub per_backend: Vec<WorkloadStats>,
    /// Checkpoints written across all jobs.
    pub checkpoints_written: u64,
    /// Checkpoints the LRU cache evicted.
    pub checkpoints_evicted: u64,
    /// `BatchWorkspace`s minted because the pool had none parked (bounded
    /// by the number of concurrently training jobs — the warmup).
    pub batch_allocated: u64,
    /// Slices served a pooled `BatchWorkspace` (steady state).
    pub batch_recycled: u64,
    /// `OccupancyWorkspace`s minted at job boot (bounded by the number of
    /// jobs simultaneously live; never grows with slices or iterations).
    pub occ_allocated: u64,
    /// Boots served a recycled, reset `OccupancyWorkspace`.
    pub occ_recycled: u64,
    /// Preview frames rendered across all jobs.
    pub preview_frames: u64,
    /// Preview tiles rendered across all jobs.
    pub preview_tiles: u64,
    /// Total runner-owned wall-clock nanoseconds across all jobs (see
    /// [`JobReport::busy_nanos`]).
    pub busy_nanos: u64,
}

/// Everything a fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-job outcomes, in the order the specs were submitted.
    pub jobs: Vec<JobReport>,
    /// Aggregated telemetry.
    pub stats: FleetStats,
    /// Job names still resident in the checkpoint cache at the end,
    /// least- to most-recently written.
    pub resident_checkpoints: Vec<String>,
}

/// A queue slot: jobs boot lazily so dataset/model construction also
/// overlaps across runners.
enum Slot {
    Fresh(Box<JobSpec>),
    Running(Box<SceneJob>),
}

/// The multi-scene training service. See the crate docs for the job
/// lifecycle and determinism contract.
#[derive(Debug, Default)]
pub struct Fleet {
    cfg: FleetConfig,
}

impl Fleet {
    /// A fleet with the given scheduler config.
    pub fn new(cfg: FleetConfig) -> Self {
        Fleet { cfg }
    }

    /// Trains every spec to completion, multiplexed over the shared pool,
    /// and returns per-job checkpoints plus fleet telemetry.
    pub fn run(&self, specs: &[JobSpec]) -> FleetReport {
        match self.cfg.threads {
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
                .install(|| self.run_inner(specs)),
            None => self.run_inner(specs),
        }
    }

    fn run_inner(&self, specs: &[JobSpec]) -> FleetReport {
        let store = CheckpointStore::new(self.cfg.max_resident_checkpoints);
        let pool = WorkspacePool::new();
        let queue: Mutex<VecDeque<Slot>> = Mutex::new(
            specs
                .iter()
                .map(|s| Slot::Fresh(Box::new(s.clone())))
                .collect(),
        );
        let reports: Mutex<Vec<JobReport>> = Mutex::new(Vec::with_capacity(specs.len()));
        let runners = self.cfg.concurrency.clamp(1, specs.len().max(1));
        let slice_iters = self.cfg.slice_iters.max(1);

        rayon::scope(|s| {
            for _ in 0..runners {
                s.spawn(|| loop {
                    let slot = queue.lock().unwrap().pop_front();
                    let mut job = match slot {
                        None => break,
                        Some(Slot::Running(job)) => job,
                        Some(Slot::Fresh(spec)) => {
                            let mut job = Box::new(
                                spec.boot_with_preview(self.cfg.preview_tiles_per_slice > 0),
                            );
                            if let Some(occ) = pool.checkout_occ() {
                                // `attach` re-points the workspace at the
                                // job's backend; the displaced (empty)
                                // one is dropped.
                                job.trainer.attach_occupancy_workspace(occ);
                                job.occ_recycled = true;
                            }
                            job
                        }
                    };

                    // Slice telemetry: wall time from here until the job
                    // is parked or retired (training + previews). Logged
                    // only — never consulted by the scheduler.
                    let slice_start = Instant::now();

                    // One slice on a pooled workspace (pool miss ⇒ the
                    // trainer mints lazily; counted via
                    // `batch_workspace_allocations`).
                    if let Some(ws) = pool.checkout_batch(job.trainer.model()) {
                        match job.trainer.attach_batch_workspace(ws) {
                            Ok(()) => job.batch_recycled += 1,
                            // Unreachable (checkout is shape-keyed), but
                            // never hand a mismatched workspace onward.
                            Err(ws) => drop(ws),
                        }
                    }
                    for _ in 0..slice_iters.min(job.remaining()) {
                        job.step();
                        if job.due_checkpoint() {
                            let blob = job.checkpoint();
                            store.put(&job.spec.name, blob);
                        }
                    }
                    if let Some(ws) = job.trainer.detach_batch_workspace() {
                        pool.park_batch(ws);
                    }
                    // Post-slice preview: a budgeted tile frame on the
                    // same shared pool (no-op unless configured).
                    if self.cfg.preview_tiles_per_slice > 0 {
                        job.render_preview(&pool, self.cfg.preview_tiles_per_slice);
                    }

                    job.busy_nanos = job
                        .busy_nanos
                        .saturating_add(slice_start.elapsed().as_nanos() as u64);

                    if job.remaining() > 0 {
                        queue.lock().unwrap().push_back(Slot::Running(job));
                        continue;
                    }

                    // Retire: final checkpoint, recycle the occupancy
                    // workspace (reset inside `park_occ`), fold stats.
                    let blob = job.checkpoint();
                    store.put(&job.spec.name, blob.clone());
                    pool.park_occ(job.trainer.detach_occupancy_workspace());
                    let batch_allocated = job.trainer.batch_workspace_allocations();
                    let mut stats = *job.trainer.stats();
                    stats.workspaces_allocated = batch_allocated + u64::from(!job.occ_recycled);
                    stats.workspaces_recycled = job.batch_recycled + u64::from(job.occ_recycled);
                    reports.lock().unwrap().push(JobReport {
                        name: job.spec.name.clone(),
                        iterations: job.done,
                        final_loss: job.last_loss,
                        stats,
                        checkpoints_written: job.checkpoints_written,
                        batch_allocated,
                        batch_recycled: job.batch_recycled,
                        occ_recycled: job.occ_recycled,
                        preview_frames: job.preview_frames,
                        preview_tiles: job.preview_tiles,
                        busy_nanos: job.busy_nanos,
                        final_checkpoint: blob,
                    });
                });
            }
        });

        let mut jobs = reports.into_inner().unwrap();
        // Retirement order depends on scheduling; report in submission
        // order so the output is stable.
        jobs.sort_by_key(|r| {
            specs
                .iter()
                .position(|s| s.name == r.name)
                .unwrap_or(usize::MAX)
        });
        let stats = Self::aggregate(&jobs, &store);
        FleetReport {
            resident_checkpoints: store.resident(),
            jobs,
            stats,
        }
    }

    /// Folds per-job stats into fleet totals and per-(backend, tier)
    /// provenance groups.
    fn aggregate(jobs: &[JobReport], store: &CheckpointStore) -> FleetStats {
        let mut total = WorkloadStats {
            backend: "fleet",
            tier: "mixed",
            ..WorkloadStats::default()
        };
        let mut per_backend: Vec<WorkloadStats> = Vec::new();
        let mut batch_allocated = 0;
        let mut batch_recycled = 0;
        let mut occ_allocated = 0;
        let mut occ_recycled = 0;
        let mut checkpoints_written = 0;
        let mut preview_frames = 0;
        let mut preview_tiles = 0;
        let mut busy_nanos = 0u64;
        for job in jobs {
            total.merge(&job.stats);
            match per_backend
                .iter_mut()
                .find(|g| g.backend == job.stats.backend && g.tier == job.stats.tier)
            {
                Some(group) => group.merge(&job.stats),
                None => per_backend.push(job.stats),
            }
            checkpoints_written += job.checkpoints_written;
            batch_allocated += job.batch_allocated;
            batch_recycled += job.batch_recycled;
            occ_allocated += u64::from(!job.occ_recycled);
            occ_recycled += u64::from(job.occ_recycled);
            preview_frames += job.preview_frames;
            preview_tiles += job.preview_tiles;
            busy_nanos = busy_nanos.saturating_add(job.busy_nanos);
        }
        FleetStats {
            jobs: jobs.len(),
            total,
            per_backend,
            checkpoints_written,
            checkpoints_evicted: store.evictions(),
            batch_allocated,
            batch_recycled,
            occ_allocated,
            occ_recycled,
            preview_frames,
            preview_tiles,
            busy_nanos,
        }
    }
}
