//! Bandwidth-limited DRAM model (LPDDR4-1866 by default).
//!
//! Hash tables that exceed the fused SRAM capacity spill to DRAM: a
//! fraction of accesses miss on-chip and fetch a full DRAM burst. The
//! model is bandwidth-limited (random 4-byte accesses cannot exploit
//! row-buffer locality in a hashed table, so each miss moves a whole
//! burst).

/// DRAM timing/energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Peak bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Burst (minimum transaction) size in bytes.
    pub burst_bytes: usize,
    /// Achievable fraction of peak bandwidth for random access (row misses,
    /// bank turnaround); 0.6 is typical for LPDDR4 with small transactions.
    pub random_efficiency: f64,
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel {
            bandwidth: 59.7e9,
            burst_bytes: 32,
            random_efficiency: 0.6,
        }
    }
}

impl DramModel {
    /// The fraction of table accesses that miss SRAM when only
    /// `sram_bytes` of a `table_bytes` table are resident (uniform-random
    /// hashed access ⇒ miss probability = non-resident fraction).
    pub fn miss_fraction(table_bytes: usize, sram_bytes: usize) -> f64 {
        if table_bytes == 0 || table_bytes <= sram_bytes {
            0.0
        } else {
            1.0 - sram_bytes as f64 / table_bytes as f64
        }
    }

    /// Bytes moved for `misses` spilled accesses (one burst each).
    pub fn spill_bytes(&self, misses: f64) -> f64 {
        misses * self.burst_bytes as f64
    }

    /// Seconds to move `bytes` at random-access efficiency.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        bytes / (self.bandwidth * self.random_efficiency)
    }

    /// Cycles (at `clock_hz`) to move `bytes`.
    pub fn transfer_cycles(&self, bytes: f64, clock_hz: f64) -> f64 {
        self.transfer_time(bytes) * clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_table_never_misses() {
        assert_eq!(DramModel::miss_fraction(1 << 20, 1 << 20), 0.0);
        assert_eq!(DramModel::miss_fraction(100, 1 << 20), 0.0);
        assert_eq!(DramModel::miss_fraction(0, 0), 0.0);
    }

    #[test]
    fn half_resident_misses_half() {
        let f = DramModel::miss_fraction(2 << 20, 1 << 20);
        assert!((f - 0.5).abs() < 1e-9);
    }

    #[test]
    fn quarter_resident_misses_three_quarters() {
        let f = DramModel::miss_fraction(1 << 20, 256 << 10);
        assert!((f - 0.75).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let d = DramModel::default();
        let t1 = d.transfer_time(1e9);
        let t2 = d.transfer_time(2e9);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // 59.7 GB/s × 0.6 ≈ 35.8 GB/s effective → 1 GB ≈ 27.9 ms.
        assert!((t1 - 1e9 / (59.7e9 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn spill_bytes_use_burst_granularity() {
        let d = DramModel::default();
        assert_eq!(d.spill_bytes(10.0), 320.0);
    }

    #[test]
    fn cycles_match_time_times_clock() {
        let d = DramModel::default();
        let c = d.transfer_cycles(1e6, 800e6);
        assert!((c - d.transfer_time(1e6) * 800e6).abs() < 1e-6);
    }

    #[test]
    fn zero_bytes_is_free() {
        let d = DramModel::default();
        assert_eq!(d.transfer_time(0.0), 0.0);
        assert_eq!(d.transfer_cycles(-5.0, 800e6), 0.0);
    }
}
