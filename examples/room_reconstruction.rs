//! AR room reconstruction: the virtual-telepresence workload — a walking
//! capture of a furnished room (the ScanNet substitute) with sensor noise,
//! reconstructed under the < 2 s latency target the paper motivates.
//!
//! Demonstrates large-AABB handling, occupancy culling and the end-to-end
//! accelerator estimate for this scene.
//!
//! ```text
//! cargo run --release --example room_reconstruction
//! ```

use instant3d::accel::{Accelerator, FeatureSet};
use instant3d::core::{PipelineWorkload, TrainConfig, Trainer};
use instant3d::scenes::SceneLibrary;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let dataset = SceneLibrary::scannet_scene(40, 14, &mut rng);
    println!(
        "room capture: {} noisy views along a walking trajectory, AABB {}",
        dataset.train_views.len(),
        dataset.aabb
    );

    let mut trainer = Trainer::new(TrainConfig::instant3d(), &dataset, &mut rng);
    for round in 1..=5 {
        for _ in 0..50 {
            trainer.step(&mut rng);
        }
        let eval = trainer.evaluate(&dataset);
        println!(
            "  iter {:>3}: RGB {:.2} dB, occupancy {:.0}%",
            round * 50,
            eval.rgb_psnr,
            trainer.occupancy_fraction() * 100.0
        );
    }

    // What would this capture cost on the Instant-3D accelerator at the
    // paper's workload scale?
    let iters = trainer.iteration() as f64;
    let w = PipelineWorkload::paper_scale_instant3d(iters);
    let sim = Accelerator::default().simulate(&w, FeatureSet::full());
    println!(
        "\naccelerator estimate for this reconstruction ({iters:.0} iterations):\n  \
         {:.2} s at {:.2} W — {} the paper's 2 s telepresence latency budget",
        sim.seconds_total,
        sim.avg_power_w,
        if sim.seconds_total < 2.0 {
            "within"
        } else {
            "over"
        }
    );
}
