//! The global work-stealing registry.
//!
//! One process-wide pool of worker threads, each owning a deque of
//! [`JobRef`]s:
//!
//! * the **owner** pushes and pops at the *back* (LIFO — depth-first,
//!   cache-hot: the most recently split half is retried first);
//! * **thieves** steal from the *front* (FIFO — breadth-first: the
//!   oldest entry is the largest still-unsplit subtree, so one steal
//!   moves the most work).
//!
//! A global **injector** queue receives jobs from threads outside the
//! pool (the bridge in [`in_worker`]); workers drain it when their own
//! deque and every victim's deque are empty — and, for fairness, poll it
//! *first* every [`INJECTOR_POLL_PERIOD`]-th search, so an externally
//! submitted region starts interleaving promptly even while a huge
//! region tree keeps every deque non-empty (a multi-scene serving layer
//! must not let one large scene starve the small ones).
//!
//! Waiting never blocks a worker that could be useful: a worker stuck on
//! a `join` latch spins through [`Registry::wait_until`], executing any
//! job it can find (often the very job it is waiting for, popped back
//! LIFO before anyone stole it). Only a worker that finds the entire
//! system empty goes to sleep, under a stamp-checked condvar protocol
//! that cannot miss a wakeup.
//!
//! The pool starts at [`crate::default_threads`] workers on first use and
//! can **grow** (up to [`MAX_THREADS`]) when a
//! [`ThreadPool::install`](crate::ThreadPool::install) requests more —
//! that is what keeps the *apparent* thread count honest (see the
//! `ThreadPool` docs for the contract).

use crate::job::JobRef;
use crate::latch::{LockLatch, SpinLatch};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Hard cap on pool size; deque slots are preallocated so growth never
/// reallocates under concurrent stealing.
pub(crate) const MAX_THREADS: usize = 64;

/// Every this-many [`Registry::find_work`] calls, a worker polls the
/// global injector *before* its own deque and the victims. Prime, so the
/// poll phase never locks onto a region's split pattern; large enough
/// that the hot path (own-deque LIFO pop) keeps its cache behaviour,
/// small enough that under full oversubscription an injected job waits
/// a few dozen task executions, not an entire region tree.
const INJECTOR_POLL_PERIOD: u32 = 61;

struct WorkerState {
    /// Owner: `push_back`/`pop_back`. Thieves: `pop_front`.
    deque: Mutex<VecDeque<JobRef>>,
}

pub(crate) struct Registry {
    /// `MAX_THREADS` preallocated slots; only `[0, spawned)` have live
    /// threads behind them.
    workers: Vec<WorkerState>,
    spawned: AtomicUsize,
    grow_lock: Mutex<()>,
    /// Jobs submitted from outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// Bumped on every push — the sleep protocol's version stamp.
    stamp: AtomicUsize,
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
}

thread_local! {
    /// The pool-worker index of the current thread, if it is one.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// The inherited apparent thread count (see `current_num_threads`).
    static APPARENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    /// Work-search counter driving the periodic injector-first poll
    /// (per-thread: only a worker searches on its own behalf, and a
    /// shared counter would just be contended noise).
    static FIND_TICK: Cell<u32> = const { Cell::new(0) };
}

static REGISTRY: OnceLock<&'static Registry> = OnceLock::new();

/// The process-wide registry, spawning the default workers on first use.
pub(crate) fn global() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let registry: &'static Registry = Box::leak(Box::new(Registry::new()));
        registry.ensure_spawned(crate::default_threads());
        registry
    })
}

/// The worker index of the calling thread, if it belongs to the pool.
pub(crate) fn current_worker() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

/// The apparent-thread-count override active on this thread, if any.
pub(crate) fn apparent_threads() -> Option<usize> {
    APPARENT_THREADS.with(|c| c.get())
}

/// Runs `f` with the apparent thread count pinned to `threads`,
/// restoring the previous value even if `f` unwinds. Jobs wrap their
/// execution in this so nested regions inherit their spawner's count.
pub(crate) fn with_apparent_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            APPARENT_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(APPARENT_THREADS.with(|c| c.replace(Some(threads))));
    f()
}

impl Registry {
    fn new() -> Self {
        Registry {
            workers: (0..MAX_THREADS)
                .map(|_| WorkerState {
                    deque: Mutex::new(VecDeque::new()),
                })
                .collect(),
            spawned: AtomicUsize::new(0),
            grow_lock: Mutex::new(()),
            injector: Mutex::new(VecDeque::new()),
            stamp: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
        }
    }

    /// The number of live worker threads.
    pub(crate) fn num_workers(&self) -> usize {
        self.spawned.load(Ordering::Acquire)
    }

    /// Grows the pool to at least `n` workers (clamped to
    /// [`MAX_THREADS`]); never shrinks.
    pub(crate) fn ensure_spawned(&'static self, n: usize) {
        let n = n.min(MAX_THREADS);
        if self.num_workers() >= n {
            return;
        }
        let _guard = self.grow_lock.lock().unwrap();
        let current = self.spawned.load(Ordering::Acquire);
        for index in current..n {
            std::thread::Builder::new()
                .name(format!("i3d-ws-{index}"))
                .spawn(move || self.worker_loop(index))
                .expect("spawn work-stealing worker");
        }
        if n > current {
            self.spawned.store(n, Ordering::Release);
        }
    }

    fn worker_loop(&'static self, index: usize) {
        WORKER_INDEX.with(|w| w.set(Some(index)));
        loop {
            match self.find_work(index) {
                // SAFETY: each JobRef is executed exactly once; its
                // spawner keeps it alive until completion is observed.
                Some(job) => unsafe { job.execute() },
                None => self.idle_sleep(index),
            }
        }
    }

    /// Owner pop (LIFO), then steal. Returns `None` only after scanning
    /// every live deque and the injector.
    ///
    /// Fairness: every [`INJECTOR_POLL_PERIOD`]-th call checks the
    /// injector *first*. Without that, a worker whose deque a big region
    /// keeps saturated would never reach the injector (it is last in the
    /// scan order), and an off-pool submission would wait for the whole
    /// region tree to drain. Which jobs run where never affects results —
    /// regions only combine disjoint writes — so the poll trades a little
    /// depth-first cache warmth for bounded cross-region latency.
    fn find_work(&self, index: usize) -> Option<JobRef> {
        let tick = FIND_TICK.with(|t| {
            let v = t.get().wrapping_add(1);
            t.set(v);
            v
        });
        if tick.is_multiple_of(INJECTOR_POLL_PERIOD) {
            if let Some(job) = self.injector.lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        if let Some(job) = self.workers[index].deque.lock().unwrap().pop_back() {
            return Some(job);
        }
        let n = self.num_workers();
        // Round-robin over victims starting just past ourselves, FIFO
        // end — the oldest job is the largest pending subtree.
        for offset in 1..n {
            let victim = (index + offset) % n;
            if let Some(job) = self.workers[victim].deque.lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        self.injector.lock().unwrap().pop_front()
    }

    /// True if any queue currently holds a job this worker could take.
    fn has_visible_work(&self, index: usize) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        let n = self.num_workers();
        (0..n).any(|v| v != index && !self.workers[v].deque.lock().unwrap().is_empty())
    }

    /// Stamp-checked sleep: a worker only parks after re-verifying, with
    /// its sleeper registration visible, that no job was pushed since it
    /// last scanned. Push → bump stamp → check sleepers and sleeper
    /// registration → re-check stamp are both `SeqCst`, so one side
    /// always sees the other. The long timeout is a defensive bound on
    /// any unforeseen protocol hole, not load-bearing — and slow enough
    /// that parked workers (the pool only grows) are not measurable
    /// polling noise for foreground work.
    fn idle_sleep(&self, index: usize) {
        let seen = self.stamp.load(Ordering::SeqCst);
        if self.has_visible_work(index) {
            return;
        }
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = self.sleep_lock.lock().unwrap();
        if self.stamp.load(Ordering::SeqCst) == seen {
            let _ = self
                .sleep_cv
                .wait_timeout(guard, Duration::from_millis(500))
                .unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes sleeping workers after a push.
    fn signal(&self) {
        self.stamp.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_lock.lock().unwrap();
            self.sleep_cv.notify_all();
        }
    }

    /// Pushes onto the calling worker's own deque (LIFO end).
    pub(crate) fn push_local(&self, index: usize, job: JobRef) {
        self.workers[index].deque.lock().unwrap().push_back(job);
        self.signal();
    }

    /// Pushes onto the global injector (from outside the pool).
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap().push_back(job);
        self.signal();
    }

    /// Keeps the calling *worker* productive until `latch` is set: pops
    /// its own deque (often retrieving the very job it waits for before
    /// anyone stole it), steals otherwise, and backs off gently when the
    /// whole system is empty (the latch's job is then running elsewhere).
    pub(crate) fn wait_until(&self, index: usize, latch: &SpinLatch) {
        let mut idle = 0u32;
        while !latch.probe() {
            if let Some(job) = self.find_work(index) {
                // SAFETY: single execution, spawner keeps the job alive.
                unsafe { job.execute() };
                idle = 0;
            } else {
                idle += 1;
                if idle < 16 {
                    std::hint::spin_loop();
                } else if idle < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}

/// Runs `op` on a pool worker: directly when the caller *is* one,
/// otherwise by injecting a bridge job and blocking until it completes.
///
/// The bridge is the one heap allocation a parallel region started from
/// an external thread costs (plus the latch `Arc`); everything inside the
/// region is stack jobs. `op`'s borrows stay valid because the caller
/// does not return before the latch is set. Panics inside `op` are
/// re-raised on the calling thread with their original payload.
pub(crate) fn in_worker<OP, R>(op: OP) -> R
where
    OP: FnOnce(usize) -> R + Send,
    R: Send,
{
    if let Some(index) = current_worker() {
        return op(index);
    }
    let registry = global();
    let latch = Arc::new(LockLatch::new());
    let slot: Mutex<Option<std::thread::Result<R>>> = Mutex::new(None);
    {
        let latch = Arc::clone(&latch);
        let slot = &slot;
        let threads = crate::current_num_threads();
        let job = crate::job::HeapJob::new(
            move || {
                let index = current_worker().expect("bridge job ran off-pool");
                let result = panic::catch_unwind(AssertUnwindSafe(|| op(index)));
                *slot.lock().unwrap() = Some(result);
                latch.set();
            },
            threads,
        );
        // SAFETY: we block on the latch below, so `op` and `slot` outlive
        // the job's execution; the job runs exactly once.
        let job_ref = unsafe { job.into_job_ref() };
        registry.inject(job_ref);
    }
    latch.wait();
    let result = slot
        .into_inner()
        .unwrap()
        .expect("bridge job completed without a result");
    match result {
        Ok(value) => value,
        Err(payload) => panic::resume_unwind(payload),
    }
}
