//! Microbenchmarks of the occupancy-refresh paths: the closure reference
//! (per-cell `encode_into` + per-point MLP forward — the old hot path)
//! against the batched subsystem (SoA encode through the kernel seams,
//! persistent per-level embedding cache, rotating cell subsets).
//!
//! Bench IDs are stamped with the backend's registry name and the rayon
//! worker count (`…/simd/t1`), matching the `grid_interp` convention, so
//! recorded numbers always say which kernels and how many workers
//! produced them. Every registered backend gets an arm (instrumented
//! included — its arm measures the co-sim backend's observation-off
//! overhead).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use instant3d_nerf::activation::Activation;
use instant3d_nerf::grid::{HashGrid, HashGridConfig, NullObserver};
use instant3d_nerf::kernels::{self, BackendHandle};
use instant3d_nerf::math::{Aabb, Vec3};
use instant3d_nerf::mlp::{Mlp, MlpConfig};
use instant3d_nerf::occupancy::{OccupancyGrid, OccupancyWorkspace, RefreshMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

const RESOLUTION: u32 = 32;
const THRESHOLD: f32 = 0.5;

/// `backend/threads` suffix for bench IDs of kernels that run on the
/// rayon pool.
fn stamp(backend: &BackendHandle) -> String {
    format!("{backend}/t{}", rayon::current_num_threads())
}

fn fixture() -> (HashGrid, Mlp, OccupancyGrid) {
    let mut rng = StdRng::seed_from_u64(7);
    // The default 8-level grid — the trainer's laptop-scale density grid.
    let grid = HashGrid::new_random(HashGridConfig::default(), &mut rng);
    let mlp = Mlp::new(
        MlpConfig::new(
            grid.output_dim(),
            &[64],
            1,
            Activation::Relu,
            Activation::TruncExp,
        ),
        &mut rng,
    );
    let occ = OccupancyGrid::new(Aabb::UNIT, RESOLUTION);
    (grid, mlp, occ)
}

/// The closure reference path: what the refresh cost before the batched
/// subsystem — one `encode_into` + one MLP forward per cell center.
fn bench_refresh_closure(c: &mut Criterion) {
    let (grid, mlp, mut occ) = fixture();
    let mut emb = vec![0.0f32; grid.output_dim()];
    let mut ws = mlp.workspace();
    c.bench_function(&format!("occupancy/refresh_closure/r{RESOLUTION}"), |b| {
        b.iter(|| {
            occ.update_from_fn(
                |p: Vec3| {
                    grid.encode_into(Aabb::UNIT.to_unit(p), &mut emb, &mut NullObserver);
                    mlp.forward(&emb, &mut ws)[0]
                },
                THRESHOLD,
            );
            black_box(occ.occupancy_fraction())
        })
    });
}

fn bench_refresh_batched(c: &mut Criterion) {
    let (grid, mlp, mut occ) = fixture();
    for backend in kernels::registered() {
        // Full refresh with a cold embedding cache: every level
        // re-encodes — the apples-to-apples comparison against the
        // closure path.
        let mut ws = OccupancyWorkspace::new(backend.clone());
        // Explicit worker-count arms for the thread-scaling axis:
        // `install` pins the apparent count and grows the shared
        // work-stealing pool to match.
        for threads in [1, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                c.bench_function(
                    &format!("occupancy/refresh_full/r{RESOLUTION}/{}", stamp(&backend)),
                    |b| {
                        b.iter(|| {
                            ws.invalidate();
                            let stats = ws.refresh(
                                &mut occ,
                                &grid,
                                &mlp,
                                Aabb::UNIT,
                                THRESHOLD,
                                RefreshMode::Threshold,
                                1,
                            );
                            black_box(stats.grid_reads)
                        })
                    },
                );
            });
        }
        // Steady-state refresh with a clean cache (no grid updates since
        // the last refresh): the encode vanishes, only the MLP re-runs.
        c.bench_function(
            &format!("occupancy/refresh_cached/r{RESOLUTION}/{}", stamp(&backend)),
            |b| {
                ws.refresh(
                    &mut occ,
                    &grid,
                    &mlp,
                    Aabb::UNIT,
                    THRESHOLD,
                    RefreshMode::Threshold,
                    1,
                );
                b.iter(|| {
                    let stats = ws.refresh(
                        &mut occ,
                        &grid,
                        &mlp,
                        Aabb::UNIT,
                        THRESHOLD,
                        RefreshMode::Threshold,
                        1,
                    );
                    black_box(stats.cells_probed)
                })
            },
        );
        // Amortized refresh: dirty grid, but only 1/8 of the cells probed
        // per call (the instant-ngp-style rotating subset).
        let mut sub_ws = OccupancyWorkspace::new(backend.clone());
        c.bench_function(
            &format!(
                "occupancy/refresh_subset8/r{RESOLUTION}/{}",
                stamp(&backend)
            ),
            |b| {
                b.iter(|| {
                    sub_ws.invalidate();
                    let stats = sub_ws.refresh(
                        &mut occ,
                        &grid,
                        &mlp,
                        Aabb::UNIT,
                        THRESHOLD,
                        RefreshMode::Threshold,
                        8,
                    );
                    black_box(stats.cells_probed)
                })
            },
        );
    }
}

criterion_group!(benches, bench_refresh_closure, bench_refresh_batched);
criterion_main!(benches);
