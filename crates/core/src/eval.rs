//! Evaluation: render test views from a trained model and score RGB and
//! depth PSNR against ground truth.
//!
//! The depth maps are "not generated during training and merely used to
//! test the learned density quality" (§3.1) — they quantify how fast the
//! density branch is learning relative to color (Fig. 5).
//!
//! Rendering goes through the tile renderer ([`crate::render`]) at full
//! budget: tiles are scheduled on the work-stealing pool and workspaces
//! come from the process-wide reuse pool, so repeated evaluation performs
//! zero steady-state allocations. The original monolithic row-chunk
//! renderer survives as [`render_model_view_monolithic`], the executable
//! specification the tile path is golden-pinned against.

use crate::batch::BatchWorkspace;
use crate::model::{NerfModel, NullBranchObserver};
use crate::render;
use instant3d_nerf::camera::Camera;
use instant3d_nerf::image::{DepthImage, RgbImage};
use instant3d_nerf::math::Vec3;
use instant3d_nerf::metrics::{psnr_depth, psnr_rgb};
use instant3d_nerf::occupancy::OccupancyGrid;
use instant3d_scenes::Dataset;
use rayon::prelude::*;

/// RGB and depth reconstruction quality of a model on a test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Mean RGB PSNR over the test views (dB).
    pub rgb_psnr: f32,
    /// Mean depth PSNR over the test views (dB) — the density-quality probe.
    pub depth_psnr: f32,
    /// Mean luminance SSIM over the test views (in [-1, 1]).
    pub rgb_ssim: f32,
}

/// Renders one view of the model (RGB + expected-depth) through the tile
/// renderer at full budget — pixel values are identical to per-point
/// scalar queries and to [`render_model_view_monolithic`].
pub fn render_model_view(
    model: &NerfModel,
    camera: &Camera,
    samples_per_ray: usize,
    background: Vec3,
) -> (RgbImage, DepthImage) {
    render::render_view(model, camera, samples_per_ray, background, None)
}

/// The original monolithic renderer: rows are processed as ray batches —
/// one grid encode, one MLP sweep and one composite per row — with row
/// chunks running in parallel on per-chunk workspaces.
///
/// Kept as the executable specification for the tile renderer's golden
/// suite (`crates/core/tests/tile_render.rs`): a full-budget tiled frame
/// must match this bit-for-bit on every strict backend × worker count.
/// Unlike the tile path it mints a fresh [`BatchWorkspace`] per row
/// chunk, so it is reference/bench material, not a hot path.
pub fn render_model_view_monolithic(
    model: &NerfModel,
    camera: &Camera,
    samples_per_ray: usize,
    background: Vec3,
) -> (RgbImage, DepthImage) {
    let w = camera.width;
    let h = camera.height;
    let aabb = model.aabb();
    let threads = rayon::current_num_threads().min(h as usize).max(1);
    let chunk = (h as usize).div_ceil(threads);

    let mut rows: Vec<(Vec<Vec3>, Vec<f32>)> = Vec::with_capacity(h as usize);
    rows.resize_with(h as usize, || (Vec::new(), Vec::new()));

    rows.par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(tid, rows_chunk)| {
            let y0 = (tid * chunk) as u32;
            let mut bws = BatchWorkspace::new(model);
            let n = samples_per_ray.max(1);
            for (dy, row) in rows_chunk.iter_mut().enumerate() {
                let y = y0 + dy as u32;
                // Build the row's ray batch: one ray per pixel (missing
                // rays get zero samples and composite to the background).
                bws.clear();
                bws.reserve_rays(w as usize);
                for x in 0..w {
                    let ray = camera.pixel_center_ray(x, y);
                    if let Some((t0, t1)) = aabb.intersect(&ray) {
                        model.encode_dir(ray.dir, bws.sh_row_mut(x as usize));
                        let dt = (t1 - t0) / n as f32;
                        for k in 0..n {
                            let t = t0 + (k as f32 + 0.5) * dt;
                            bws.rays.push_sample(t, dt);
                            bws.positions.push(ray.at(t));
                            bws.point_ray.push(x);
                        }
                    }
                    bws.rays.end_ray();
                }
                bws.encode(model, &mut NullBranchObserver);
                bws.heads_forward(model);
                bws.composite_all(background);
                let mut colors = Vec::with_capacity(w as usize);
                let mut depths = Vec::with_capacity(w as usize);
                for x in 0..w as usize {
                    let out = bws.output(x);
                    if bws.rays.ray_range(x).is_empty() {
                        colors.push(background);
                        depths.push(0.0);
                    } else {
                        colors.push(out.color);
                        depths.push(out.depth);
                    }
                }
                *row = (colors, depths);
            }
        });

    let mut rgb = RgbImage::new(w, h);
    let mut depth = DepthImage::new(w, h);
    for (y, (colors, depths)) in rows.into_iter().enumerate() {
        for x in 0..w as usize {
            rgb.set(x as u32, y as u32, colors[x]);
            depth.set(x as u32, y as u32, depths[x]);
        }
    }
    (rgb, depth)
}

/// Scores a model against a dataset's test views with uniform ray
/// sampling — the default, metrics-stable path
/// (`evaluate_with(.., None)`).
///
/// # Panics
///
/// Panics if the dataset has no test views or the test-view and
/// test-depth counts disagree.
pub fn evaluate(model: &NerfModel, dataset: &Dataset, samples_per_ray: usize) -> EvalResult {
    evaluate_with(model, dataset, samples_per_ray, None)
}

/// Scores a model against a dataset's test views, optionally with
/// occupancy-guided sampling.
///
/// `occupancy` is the empty-space-skipping flag: `None` samples every ray
/// uniformly across its AABB span (bit-for-bit the historical metrics);
/// `Some(grid)` culls samples in unoccupied cells, which is much cheaper
/// on a trained model but produces (slightly) different pixels, so it is
/// opt-in — see `TrainConfig::eval_occupancy`.
///
/// # Panics
///
/// Panics if the dataset has no test views or the test-view and
/// test-depth counts disagree (a silently truncated zip would score
/// depth maps against the wrong views).
pub fn evaluate_with(
    model: &NerfModel,
    dataset: &Dataset,
    samples_per_ray: usize,
    occupancy: Option<&OccupancyGrid>,
) -> EvalResult {
    assert!(!dataset.test_views.is_empty(), "dataset has no test views");
    assert_eq!(
        dataset.test_views.len(),
        dataset.test_depths.len(),
        "test view/depth count mismatch: {} views vs {} depth maps",
        dataset.test_views.len(),
        dataset.test_depths.len(),
    );
    // Accumulate sums and divide by the (asserted non-zero) view count:
    // an empty mean is impossible by construction, and the summation
    // order matches `metrics::mean` so the scores are bit-stable against
    // the historical implementation.
    let n = dataset.test_views.len() as f32;
    let (mut rgb_sum, mut depth_sum, mut ssim_sum) = (0.0f32, 0.0f32, 0.0f32);
    for (view, gt_depth) in dataset.test_views.iter().zip(&dataset.test_depths) {
        let (rgb, depth) = render::render_view(
            model,
            &view.camera,
            samples_per_ray,
            dataset.background,
            occupancy,
        );
        rgb_sum += psnr_rgb(&view.image, &rgb);
        depth_sum += psnr_depth(gt_depth, &depth);
        ssim_sum += instant3d_nerf::ssim::ssim(&view.image, &rgb);
    }
    EvalResult {
        rgb_psnr: rgb_sum / n,
        depth_psnr: depth_sum / n,
        rgb_ssim: ssim_sum / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use instant3d_scenes::SceneLibrary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn render_model_view_shapes_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = SceneLibrary::synthetic_scene(0, 12, 3, &mut rng);
        let model = NerfModel::new(&TrainConfig::fast_preview(), ds.aabb, &mut rng);
        let (rgb, depth) = render_model_view(&model, &ds.test_views[0].camera, 16, ds.background);
        assert_eq!(rgb.width(), 12);
        assert_eq!(depth.height(), 12);
        for p in rgb.pixels() {
            assert!(p.is_finite());
        }
        for &d in depth.depths() {
            assert!(d.is_finite() && d >= 0.0);
        }
    }

    #[test]
    fn evaluate_returns_finite_psnrs() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = SceneLibrary::synthetic_scene(1, 12, 3, &mut rng);
        let model = NerfModel::new(&TrainConfig::fast_preview(), ds.aabb, &mut rng);
        let r = evaluate(&model, &ds, 16);
        assert!(r.rgb_psnr.is_finite());
        assert!(r.depth_psnr.is_finite());
        assert!((-1.0..=1.0).contains(&r.rgb_ssim));
        // An untrained model should be far from ground truth.
        assert!(r.rgb_psnr < 30.0);
        assert!(r.rgb_ssim < 0.999);
    }

    #[test]
    #[should_panic(expected = "test view/depth count mismatch")]
    fn evaluate_rejects_mismatched_depth_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ds = SceneLibrary::synthetic_scene(0, 8, 3, &mut rng);
        let model = NerfModel::new(&TrainConfig::fast_preview(), ds.aabb, &mut rng);
        ds.test_depths.pop();
        let _ = evaluate(&model, &ds, 4);
    }
}
