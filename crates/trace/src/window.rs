//! Sliding-window unique-address analysis (Fig. 10 of the paper).
//!
//! The paper slides a 1000-access window over the feed-forward and
//! back-propagation streams and counts unique addresses: FF windows are
//! (almost) all unique, BP windows revisit shared embeddings (~200 unique
//! per 1000) — the headroom the BUM unit converts into merged writes.

use std::collections::HashMap;

/// Default window length used by the paper.
pub const PAPER_WINDOW: usize = 1000;

/// Counts unique keys within each sliding window of length `window`,
/// advancing by `stride`. Returns one count per window position.
///
/// # Panics
///
/// Panics if `window` or `stride` is zero.
pub fn unique_per_window(stream: &[u64], window: usize, stride: usize) -> Vec<usize> {
    assert!(window > 0, "window must be positive");
    assert!(stride > 0, "stride must be positive");
    if stream.len() < window {
        return Vec::new();
    }
    let mut out = Vec::with_capacity((stream.len() - window) / stride + 1);
    // Incremental multiset for stride < window; rebuild when stride >= window.
    if stride >= window {
        let mut start = 0;
        while start + window <= stream.len() {
            let mut set: std::collections::HashSet<u64> =
                std::collections::HashSet::with_capacity(window);
            set.extend(&stream[start..start + window]);
            out.push(set.len());
            start += stride;
        }
        return out;
    }
    let mut counts: HashMap<u64, u32> = HashMap::with_capacity(window * 2);
    for &k in &stream[..window] {
        *counts.entry(k).or_insert(0) += 1;
    }
    out.push(counts.len());
    let mut start = stride;
    while start + window <= stream.len() {
        for &k in &stream[start - stride..start] {
            if let Some(c) = counts.get_mut(&k) {
                *c -= 1;
                if *c == 0 {
                    counts.remove(&k);
                }
            }
        }
        for &k in &stream[start + window - stride..start + window] {
            *counts.entry(k).or_insert(0) += 1;
        }
        out.push(counts.len());
        start += stride;
    }
    out
}

/// Summary of a stream's windowed uniqueness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSummary {
    /// Windows analysed.
    pub windows: usize,
    /// Mean unique addresses per window.
    pub mean_unique: f64,
    /// Minimum across windows.
    pub min_unique: usize,
    /// Maximum across windows.
    pub max_unique: usize,
    /// Window length used.
    pub window: usize,
}

impl WindowSummary {
    /// Mean uniqueness as a fraction of the window length.
    pub fn mean_unique_fraction(&self) -> f64 {
        self.mean_unique / self.window as f64
    }
}

/// Computes the windowed-uniqueness summary of a stream.
pub fn summarize(stream: &[u64], window: usize, stride: usize) -> WindowSummary {
    let counts = unique_per_window(stream, window, stride);
    if counts.is_empty() {
        return WindowSummary {
            windows: 0,
            mean_unique: 0.0,
            min_unique: 0,
            max_unique: 0,
            window,
        };
    }
    WindowSummary {
        windows: counts.len(),
        mean_unique: counts.iter().sum::<usize>() as f64 / counts.len() as f64,
        min_unique: counts.iter().copied().min().unwrap_or(0),
        max_unique: counts.iter().copied().max().unwrap_or(0),
        window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_unique_stream() {
        let stream: Vec<u64> = (0..100).collect();
        let counts = unique_per_window(&stream, 10, 5);
        assert!(counts.iter().all(|&c| c == 10));
        assert_eq!(counts.len(), 19);
    }

    #[test]
    fn constant_stream_has_one_unique() {
        let stream = vec![7u64; 50];
        let counts = unique_per_window(&stream, 10, 10);
        assert!(counts.iter().all(|&c| c == 1));
        assert_eq!(counts.len(), 5);
    }

    #[test]
    fn repeating_pattern_counts_period() {
        let stream: Vec<u64> = (0..1000).map(|i| (i % 200) as u64).collect();
        let s = summarize(&stream, PAPER_WINDOW, PAPER_WINDOW);
        assert_eq!(s.windows, 1);
        assert_eq!(s.mean_unique, 200.0);
        assert!((s.mean_unique_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn incremental_matches_rebuild() {
        // Same stream through the incremental (stride < window) and rebuild
        // (stride >= window) paths at window boundaries.
        let stream: Vec<u64> = (0..500).map(|i| (i * 37 % 91) as u64).collect();
        let inc = unique_per_window(&stream, 50, 25);
        // Cross-check every other incremental window against a rebuild.
        for (w_idx, &c) in inc.iter().enumerate() {
            let start = w_idx * 25;
            let mut set: std::collections::HashSet<u64> = std::collections::HashSet::new();
            set.extend(&stream[start..start + 50]);
            assert_eq!(c, set.len(), "window {w_idx}");
        }
    }

    #[test]
    fn short_stream_yields_no_windows() {
        assert!(unique_per_window(&[1, 2, 3], 10, 1).is_empty());
        let s = summarize(&[1, 2, 3], 10, 1);
        assert_eq!(s.windows, 0);
    }

    #[test]
    #[should_panic]
    fn zero_window_panics() {
        let _ = unique_per_window(&[1], 0, 1);
    }

    #[test]
    #[should_panic]
    fn zero_stride_panics() {
        let _ = unique_per_window(&[1], 1, 0);
    }

    #[test]
    fn min_max_tracking() {
        // First window all unique, later windows constant.
        let mut stream: Vec<u64> = (0..10).collect();
        stream.extend(vec![99u64; 20]);
        let s = summarize(&stream, 10, 10);
        assert_eq!(s.min_unique, 1);
        assert_eq!(s.max_unique, 10);
    }
}
