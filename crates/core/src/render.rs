//! The tile-streaming frame renderer: resumable, budgeted, cache-reusing
//! rendering of model views on the batched SoA engine.
//!
//! The ROADMAP's interactive-preview item (AR/VR capture feedback) needs
//! frames at a *fixed latency*, not a fixed quality: a preview consumer
//! asks for "whatever you can render in this slice" and keeps the rest of
//! the frame from last time. This module decomposes a frame into
//! fixed-size tiles and drives them through a [`FrameScheduler`]:
//!
//! # Frame lifecycle
//!
//! 1. **Budget** — each [`FrameScheduler::render_frame`] call gets a
//!    [`FrameBudget`]: a tile quota and/or a wall-clock deadline.
//!    [`FrameBudget::full`] (no cap) renders every stale tile — the eval
//!    path.
//! 2. **Progressive refinement** — stale tiles are scheduled as jobs on
//!    the shared work-stealing pool, round-robin from a persistent
//!    cursor so successive budgeted frames sweep the whole frame instead
//!    of re-polishing its top-left corner. Each job checks a
//!    [`BatchWorkspace`] out of the shape-keyed [`WorkspacePool`]
//!    (minting only on pool miss — warmup), marches its tile's rays, and
//!    parks the workspace back: steady-state rendering performs **zero
//!    workspace allocations**.
//! 3. **Invalidation** — a rendered tile records the hash-grid
//!    [`level_versions`](instant3d_nerf::grid::HashGrid::level_versions)
//!    and the occupancy grid's
//!    [`content_signature`](OccupancyGrid::content_signature) it was
//!    rendered against. The next frame re-renders only tiles whose
//!    recorded versions drifted; tiles whose rays never touched the grid
//!    (pure background) ignore grid-version bumps entirely and stay
//!    cached across training steps.
//!
//! # Determinism contract
//!
//! Every pixel is an independent function of (model, camera, sample
//! count, background, occupancy): rays never share accumulation state,
//! so tile shape, tile order, budget splits and worker count cannot
//! change a single bit. A full-budget tiled frame is **bit-identical**
//! to the monolithic row-chunk renderer
//! ([`render_model_view_monolithic`](crate::eval::render_model_view_monolithic),
//! kept as the executable specification) on every strict backend × worker
//! count — pinned by the golden suite in `crates/core/tests/tile_render.rs`.
//!
//! Ray marching uses the same per-ray pipeline as training: stratified
//! stratum-center samples, optional occupancy culling
//! (`sample_segments_occupancy_into`), and transmittance early
//! termination inside the backend's `composite_ray` kernel.

use crate::batch::BatchWorkspace;
use crate::model::{NerfModel, NullBranchObserver};
use crate::pool::WorkspacePool;
use crate::profile::WorkloadStats;
use instant3d_nerf::camera::Camera;
use instant3d_nerf::image::{DepthImage, RgbImage};
use instant3d_nerf::math::{Aabb, Vec3};
use instant3d_nerf::occupancy::OccupancyGrid;
use instant3d_nerf::sampler::sample_segments_occupancy_into;
use rand::rngs::StdRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Default tile edge, in pixels. 16×16 tiles × 32–64 samples/ray give a
/// few-thousand-point batch per job — enough to amortize the batched
/// kernels, small enough that a budget of a handful of tiles is a
/// meaningful latency knob.
pub const DEFAULT_TILE_SIZE: u32 = 16;

/// The frame-wide rendering parameters (fixed for a scheduler's life).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOptions {
    /// Stratified samples per ray (clamped to ≥ 1).
    pub samples_per_ray: usize,
    /// Background color composited behind transmissive rays and used for
    /// never-rendered tiles.
    pub background: Vec3,
    /// Tile edge in pixels (≥ 1); the frame border tiles are clipped.
    pub tile_size: u32,
}

impl RenderOptions {
    /// Options with the default tile size.
    pub fn new(samples_per_ray: usize, background: Vec3) -> Self {
        RenderOptions {
            samples_per_ray,
            background,
            tile_size: DEFAULT_TILE_SIZE,
        }
    }
}

/// Per-frame work budget. Both limits may be combined; whichever trips
/// first wins. Tile quotas are deterministic (the same stale set yields
/// the same rendered set); deadlines are wall-clock best-effort and exist
/// for interactive consumers only — tests and eval use tile budgets.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameBudget {
    /// Maximum tiles rendered this frame (`None` = unbounded).
    pub max_tiles: Option<usize>,
    /// Wall-clock deadline checked before each tile job starts
    /// (`None` = unbounded). Already-running tiles finish.
    pub max_time: Option<Duration>,
}

impl FrameBudget {
    /// No limits: render every stale tile (the eval path).
    pub fn full() -> Self {
        FrameBudget::default()
    }

    /// At most `n` tiles this frame.
    pub fn tiles(n: usize) -> Self {
        FrameBudget {
            max_tiles: Some(n),
            max_time: None,
        }
    }

    /// Best-effort wall-clock deadline.
    pub fn time(d: Duration) -> Self {
        FrameBudget {
            max_tiles: None,
            max_time: Some(d),
        }
    }
}

/// A tile's pixel rectangle within the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRect {
    /// Left edge (inclusive).
    pub x0: u32,
    /// Top edge (inclusive).
    pub y0: u32,
    /// Width in pixels (≥ 1; border tiles are clipped to the frame).
    pub w: u32,
    /// Height in pixels (≥ 1).
    pub h: u32,
}

/// The frame → tile decomposition: `ceil(w/tile) × ceil(h/tile)` rects in
/// row-major order, border rects clipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileLayout {
    frame_w: u32,
    frame_h: u32,
    tile: u32,
    tiles_x: u32,
    tiles_y: u32,
}

impl TileLayout {
    /// Decomposes a `w × h` frame into `tile`-edge tiles.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn new(frame_w: u32, frame_h: u32, tile: u32) -> Self {
        assert!(frame_w > 0 && frame_h > 0, "frame must be non-empty");
        assert!(tile > 0, "tile size must be non-zero");
        TileLayout {
            frame_w,
            frame_h,
            tile,
            tiles_x: frame_w.div_ceil(tile),
            tiles_y: frame_h.div_ceil(tile),
        }
    }

    /// Total tile count.
    pub fn tile_count(&self) -> usize {
        (self.tiles_x * self.tiles_y) as usize
    }

    /// The declared [`WritePlan`](instant3d_nerf::kernels::WritePlan)s of
    /// the tile decomposition: the frame is the product of a chunked
    /// x-axis partition (columns in `tile`-wide chunks, border remainder
    /// clipped) and the same partition over rows. The conformance prover
    /// verifies each axis is disjoint and gap-free for **all**
    /// `(frame_w, frame_h, tile)` — so every pixel belongs to exactly one
    /// tile, the invariant the tile runners' independent per-tile buffers
    /// (and the frame reassembly in [`FrameScheduler::frame`]) rest on.
    pub fn write_plans() -> [instant3d_nerf::kernels::WritePlan; 2] {
        [
            instant3d_nerf::kernels::WritePlan::chunked(
                concat!(file!(), ":", line!(), " TileLayout::tile_rect"),
                "frame columns (tile x-partition)",
                "frame_w",
                "tile",
                None,
            ),
            instant3d_nerf::kernels::WritePlan::chunked(
                concat!(file!(), ":", line!(), " TileLayout::tile_rect"),
                "frame rows (tile y-partition)",
                "frame_h",
                "tile",
                None,
            ),
        ]
    }

    /// Checks every tile rect against the instantiated write plans: tile
    /// `(tx, ty)`'s pixel rectangle must be exactly the product of the
    /// x/y partitions' declared intervals — the runtime anti-drift
    /// counterpart of the prover's symbolic coverage proof, run by
    /// [`FrameScheduler::render_frame`] under
    /// [`Kernels::plan_conformance`](instant3d_nerf::kernels::Kernels::plan_conformance).
    pub fn assert_plan_conformance(&self) {
        let [x_plan, y_plan] = Self::write_plans();
        let shape = |total: u32| {
            [
                ("frame_w", i128::from(total)),
                ("frame_h", i128::from(total)),
                ("tile", i128::from(self.tile)),
            ]
        };
        let x = x_plan.instantiate(&shape(self.frame_w), &[]);
        let y = y_plan.instantiate(&shape(self.frame_h), &[]);
        assert_eq!(
            (x.tasks.len(), y.tasks.len()),
            (self.tiles_x as usize, self.tiles_y as usize),
            "tile grid escapes the declared plan"
        );
        for idx in 0..self.tile_count() {
            let r = self.tile_rect(idx);
            let (xs, xe) = x.tasks[(idx as u32 % self.tiles_x) as usize];
            let (ys, ye) = y.tasks[(idx as u32 / self.tiles_x) as usize];
            assert!(
                r.x0 as usize == xs
                    && (r.x0 + r.w) as usize == xe
                    && r.y0 as usize == ys
                    && (r.y0 + r.h) as usize == ye,
                "tile {idx} rect {r:?} escapes its declared plan intervals \
                 [{xs}, {xe}) × [{ys}, {ye})"
            );
        }
    }

    /// The clipped pixel rectangle of tile `idx` (row-major).
    pub fn tile_rect(&self, idx: usize) -> TileRect {
        debug_assert!(idx < self.tile_count());
        let tx = idx as u32 % self.tiles_x;
        let ty = idx as u32 / self.tiles_x;
        let x0 = tx * self.tile;
        let y0 = ty * self.tile;
        TileRect {
            x0,
            y0,
            w: self.tile.min(self.frame_w - x0),
            h: self.tile.min(self.frame_h - y0),
        }
    }
}

/// What one [`FrameScheduler::render_frame`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameProgress {
    /// Tiles rendered this frame.
    pub tiles_rendered: usize,
    /// Tiles served from the converged-tile cache (fresh at frame start).
    pub tiles_cached: usize,
    /// Tiles still stale after this frame (budget/deadline exhausted).
    pub tiles_stale: usize,
    /// Whether every tile is now fresh (`tiles_stale == 0`).
    pub complete: bool,
}

/// Cumulative scheduler telemetry — the render-side mirror of the fleet's
/// workspace accounting. Each runner task checks out one workspace per
/// frame, so `workspaces_minted` is the warmup cost (hard-bounded by the
/// worker count) and `workspaces_recycled` grows per runner per frame
/// after it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenderTelemetry {
    /// Frames scheduled.
    pub frames: u64,
    /// Tiles rendered across all frames.
    pub tiles_rendered: u64,
    /// Tiles served from cache instead of re-rendered.
    pub tiles_cached: u64,
    /// Tiles invalidated by grid-version / occupancy-signature drift.
    pub tiles_invalidated: u64,
    /// Tiles whose job was skipped by a wall-clock deadline.
    pub tiles_deadline_skipped: u64,
    /// Rays marched (tile pixels of rendered tiles).
    pub rays: u64,
    /// Points sampled after occupancy culling.
    pub points: u64,
    /// `BatchWorkspace`s minted on pool miss (warmup).
    pub workspaces_minted: u64,
    /// Runner activations served by a pooled workspace (steady state).
    pub workspaces_recycled: u64,
}

impl RenderTelemetry {
    /// The telemetry as a [`WorkloadStats`] record, stamped with the
    /// model's backend/tier provenance — mints and recycles land in
    /// `workspaces_allocated` / `workspaces_recycled` so render workload
    /// aggregates alongside training stats.
    pub fn as_workload_stats(&self, model: &NerfModel) -> WorkloadStats {
        WorkloadStats {
            backend: model.kernel_backend().name(),
            tier: model.kernel_backend().tier().label(),
            rays: self.rays,
            points: self.points,
            workspaces_allocated: self.workspaces_minted,
            workspaces_recycled: self.workspaces_recycled,
            ..WorkloadStats::default()
        }
    }
}

/// A cached tile: pixels plus the model/occupancy state they were
/// rendered against.
#[derive(Debug)]
struct TileState {
    rect: TileRect,
    colors: Vec<Vec3>,
    depths: Vec<f32>,
    /// Whether `colors`/`depths` hold a rendered result (vs. the initial
    /// background fill).
    valid: bool,
    /// Selected for rendering in the current frame.
    pending: bool,
    /// Whether any of the tile's rays pushed sample points — only such
    /// tiles depend on the hash-grid parameters.
    sampled_grid: bool,
    /// Density ++ color `level_versions` snapshot at render time.
    versions: Vec<u64>,
    /// Occupancy [`content_signature`](OccupancyGrid::content_signature)
    /// at render time (0 = rendered without occupancy culling).
    occ_sig: u64,
}

impl TileState {
    fn new(rect: TileRect, background: Vec3) -> Self {
        let area = (rect.w * rect.h) as usize;
        TileState {
            rect,
            colors: vec![background; area],
            depths: vec![0.0; area],
            valid: false,
            pending: false,
            sampled_grid: false,
            versions: Vec::new(),
            occ_sig: 0,
        }
    }

    /// Whether the cached result is still valid against the current grid
    /// versions and occupancy signature. Tiles that never sampled the
    /// grid are immune to version bumps.
    fn fresh(&self, versions: &[u64], occ_sig: u64) -> bool {
        self.valid && self.occ_sig == occ_sig && (!self.sampled_grid || self.versions == versions)
    }
}

/// The resumable tile renderer for one camera view. See the
/// [module docs](self) for the frame lifecycle; eval's
/// [`render_model_view`](crate::eval::render_model_view) is a thin
/// full-budget client of this type.
#[derive(Debug)]
pub struct FrameScheduler {
    camera: Camera,
    opts: RenderOptions,
    layout: TileLayout,
    tiles: Vec<TileState>,
    /// Round-robin start of the next frame's tile selection.
    cursor: usize,
    telemetry: RenderTelemetry,
}

impl FrameScheduler {
    /// A scheduler for `camera`'s frame, all tiles initially stale.
    ///
    /// # Panics
    ///
    /// Panics when the camera frame or the tile size is empty.
    pub fn new(camera: Camera, opts: RenderOptions) -> Self {
        let layout = TileLayout::new(camera.width, camera.height, opts.tile_size);
        let tiles = (0..layout.tile_count())
            .map(|i| TileState::new(layout.tile_rect(i), opts.background))
            .collect();
        FrameScheduler {
            camera,
            opts,
            layout,
            tiles,
            cursor: 0,
            telemetry: RenderTelemetry::default(),
        }
    }

    /// The frame's tile decomposition.
    pub fn layout(&self) -> &TileLayout {
        &self.layout
    }

    /// Cumulative telemetry since construction.
    pub fn telemetry(&self) -> &RenderTelemetry {
        &self.telemetry
    }

    /// The camera this scheduler renders.
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// Marks every tile stale (e.g. after an out-of-band model change the
    /// version counters cannot see).
    pub fn invalidate_all(&mut self) {
        for t in &mut self.tiles {
            t.valid = false;
        }
    }

    /// Moves the scheduler to a new viewpoint. A camera with the same
    /// frame size keeps the tile buffers (all marked stale); a resize
    /// rebuilds the layout.
    pub fn set_camera(&mut self, camera: Camera) {
        if camera.width == self.camera.width && camera.height == self.camera.height {
            self.camera = camera;
            self.invalidate_all();
        } else {
            let telemetry = self.telemetry;
            *self = FrameScheduler::new(camera, self.opts);
            self.telemetry = telemetry;
        }
    }

    /// Whether every tile is fresh for the given model/occupancy state
    /// (no work would be scheduled).
    pub fn is_converged(&self, model: &NerfModel, occ: Option<&OccupancyGrid>) -> bool {
        let versions = grid_versions(model);
        let occ_sig = occ.map_or(0, OccupancyGrid::content_signature);
        self.tiles.iter().all(|t| t.fresh(&versions, occ_sig))
    }

    /// Renders up to `budget` worth of stale tiles, in parallel, each on
    /// a workspace checked out of `pool`. Passing `occ` turns on
    /// occupancy-guided sampling (changes pixel values — empty space is
    /// skipped); `None` reproduces the monolithic renderer bit-for-bit.
    pub fn render_frame(
        &mut self,
        model: &NerfModel,
        occ: Option<&OccupancyGrid>,
        budget: FrameBudget,
        pool: &WorkspacePool,
    ) -> FrameProgress {
        let versions = grid_versions(model);
        let occ_sig = occ.map_or(0, OccupancyGrid::content_signature);
        if model.kernel_backend().plan_conformance() {
            self.layout.assert_plan_conformance();
        }

        // Invalidate drifted tiles, then select up to the budget's quota
        // of stale ones, round-robin from the cursor.
        let mut invalidated = 0u64;
        for t in &mut self.tiles {
            if t.valid && !t.fresh(&versions, occ_sig) {
                t.valid = false;
                invalidated += 1;
            }
        }
        let n_tiles = self.tiles.len();
        let stale = self.tiles.iter().filter(|t| !t.valid).count();
        let fresh_at_start = n_tiles - stale;
        let quota = budget.max_tiles.unwrap_or(usize::MAX).min(stale);
        let mut selected = 0usize;
        let mut idx = self.cursor.min(n_tiles - 1);
        while selected < quota {
            if !self.tiles[idx].valid && !self.tiles[idx].pending {
                self.tiles[idx].pending = true;
                selected += 1;
            }
            idx = (idx + 1) % n_tiles;
        }
        if quota > 0 {
            self.cursor = idx;
        }

        let deadline = budget.max_time.map(|d| Instant::now() + d);
        let rendered = AtomicU64::new(0);
        let skipped = AtomicU64::new(0);
        let rays = AtomicU64::new(0);
        let points = AtomicU64::new(0);
        let minted = AtomicU64::new(0);
        let recycled = AtomicU64::new(0);

        let camera = self.camera;
        let opts = self.opts;
        let aabb = model.aabb();
        let versions_ref = &versions;

        // The selected tiles as an indexed work queue. Mutable borrows
        // are disjoint by construction (each tile appears once); the
        // per-item mutex only transfers that borrow to whichever runner
        // claims the index — it is never contended.
        let work: Vec<std::sync::Mutex<&mut TileState>> = self
            .tiles
            .iter_mut()
            .filter_map(|t| {
                if t.pending {
                    t.pending = false;
                    Some(std::sync::Mutex::new(t))
                } else {
                    None
                }
            })
            .collect();
        // Fixed runner tasks, fleet-style, each holding ONE workspace for
        // the whole frame: this is what hard-bounds workspace mints by
        // the worker count. (Per-tile checkout would over-mint — a worker
        // blocked in a tile's nested parallel region can steal another
        // tile job and would need a second workspace.)
        let runners = rayon::current_num_threads().min(work.len()).max(1);
        let next = std::sync::atomic::AtomicUsize::new(0);
        if !work.is_empty() {
            rayon::scope(|s| {
                for _ in 0..runners {
                    s.spawn(|| {
                        let mut ws: Option<BatchWorkspace> = None;
                        loop {
                            // ORDERING: Relaxed — work-stealing ticket; tile
                            // contents are synchronized by each tile's mutex.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= work.len() {
                                break;
                            }
                            if deadline.is_some_and(|d| Instant::now() > d) {
                                // ORDERING: Relaxed — telemetry counter.
                                skipped.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            let bws = ws.get_or_insert_with(|| match pool.checkout_batch(model) {
                                Some(ws) => {
                                    // ORDERING: Relaxed — telemetry counter.
                                    recycled.fetch_add(1, Ordering::Relaxed);
                                    ws
                                }
                                None => {
                                    // ORDERING: Relaxed — telemetry counter.
                                    minted.fetch_add(1, Ordering::Relaxed);
                                    BatchWorkspace::new(model)
                                }
                            });
                            // PANICS: lock poisoning means a sibling tile
                            // worker already panicked — propagate it.
                            let t: &mut TileState = &mut work[i].lock().unwrap();
                            let (sampled_grid, tile_points) = render_tile(
                                model,
                                &camera,
                                &aabb,
                                t.rect,
                                &opts,
                                occ,
                                bws,
                                &mut t.colors,
                                &mut t.depths,
                            );
                            t.valid = true;
                            t.sampled_grid = sampled_grid;
                            t.versions.clone_from(versions_ref);
                            t.occ_sig = occ_sig;
                            // ORDERING: Relaxed — telemetry counters; read
                            // after the scope joins all runners.
                            rendered.fetch_add(1, Ordering::Relaxed);
                            rays.fetch_add(
                                u64::from(t.rect.w) * u64::from(t.rect.h),
                                Ordering::Relaxed, // ORDERING: telemetry counter.
                            );
                            points.fetch_add(tile_points, Ordering::Relaxed); // ORDERING: telemetry.
                        }
                        if let Some(ws) = ws {
                            pool.park_batch(ws);
                        }
                    });
                }
            });
        }

        let tiles_rendered = rendered.into_inner() as usize;
        self.telemetry.frames += 1;
        self.telemetry.tiles_rendered += tiles_rendered as u64;
        self.telemetry.tiles_cached += fresh_at_start as u64;
        self.telemetry.tiles_invalidated += invalidated;
        self.telemetry.tiles_deadline_skipped += skipped.into_inner();
        self.telemetry.rays += rays.into_inner();
        self.telemetry.points += points.into_inner();
        self.telemetry.workspaces_minted += minted.into_inner();
        self.telemetry.workspaces_recycled += recycled.into_inner();

        let tiles_stale = self.tiles.iter().filter(|t| !t.valid).count();
        FrameProgress {
            tiles_rendered,
            tiles_cached: fresh_at_start,
            tiles_stale,
            complete: tiles_stale == 0,
        }
    }

    /// Assembles the current frame (RGB + expected depth). Stale tiles
    /// contribute their last rendered content; never-rendered tiles are
    /// the background.
    pub fn frame(&self) -> (RgbImage, DepthImage) {
        let mut rgb = RgbImage::new(self.layout.frame_w, self.layout.frame_h);
        let mut depth = DepthImage::new(self.layout.frame_w, self.layout.frame_h);
        for t in &self.tiles {
            for dy in 0..t.rect.h {
                for dx in 0..t.rect.w {
                    let i = (dy * t.rect.w + dx) as usize;
                    rgb.set(t.rect.x0 + dx, t.rect.y0 + dy, t.colors[i]);
                    depth.set(t.rect.x0 + dx, t.rect.y0 + dy, t.depths[i]);
                }
            }
        }
        (rgb, depth)
    }
}

/// Density ++ color per-level version snapshot — the grid half of the
/// tile invalidation key.
fn grid_versions(model: &NerfModel) -> Vec<u64> {
    let mut v = model.density_grid().level_versions().to_vec();
    if let Some(c) = model.color_grid() {
        v.extend_from_slice(c.level_versions());
    }
    v
}

/// Marches one tile's rays through the batched pipeline into
/// `colors`/`depths` (row-major within the tile). Returns whether any ray
/// sampled the grid, and the sampled point count.
///
/// Without `occ` the sampling lattice is exactly the monolithic
/// renderer's (`t = t0 + (k + 0.5)·δt` across the AABB span) — the
/// bit-identity contract. With `occ`, rays are pre-filtered with
/// [`OccupancyGrid::ray_segment_occupied`] and surviving rays sample
/// through `sample_segments_occupancy_into`, so known-empty space costs
/// one bitfield probe per stratum instead of a full grid+MLP evaluation.
#[allow(clippy::too_many_arguments)]
fn render_tile(
    model: &NerfModel,
    camera: &Camera,
    aabb: &Aabb,
    rect: TileRect,
    opts: &RenderOptions,
    occ: Option<&OccupancyGrid>,
    bws: &mut BatchWorkspace,
    colors: &mut [Vec3],
    depths: &mut [f32],
) -> (bool, u64) {
    let n = opts.samples_per_ray.max(1);
    let rays = (rect.w * rect.h) as usize;
    bws.clear();
    bws.reserve_rays(rays);
    for dy in 0..rect.h {
        for dx in 0..rect.w {
            let r = (dy * rect.w + dx) as usize;
            let ray = camera.pixel_center_ray(rect.x0 + dx, rect.y0 + dy);
            if let Some((t0, t1)) = aabb.intersect(&ray) {
                match occ {
                    None => {
                        model.encode_dir(ray.dir, bws.sh_row_mut(r));
                        let dt = (t1 - t0) / n as f32;
                        for k in 0..n {
                            let t = t0 + (k as f32 + 0.5) * dt;
                            bws.rays.push_sample(t, dt);
                            bws.positions.push(ray.at(t));
                            bws.point_ray.push(r as u32);
                        }
                    }
                    Some(g) if g.ray_segment_occupied(&ray, t0, t1, n) => {
                        sample_segments_occupancy_into::<StdRng>(
                            &ray,
                            aabb,
                            n,
                            g,
                            None,
                            &mut bws.seg_scratch,
                        );
                        if !bws.seg_scratch.is_empty() {
                            model.encode_dir(ray.dir, bws.sh_row_mut(r));
                            for i in 0..bws.seg_scratch.len() {
                                let (t, dt) = bws.seg_scratch[i];
                                bws.rays.push_sample(t, dt);
                                bws.positions.push(ray.at(t));
                                bws.point_ray.push(r as u32);
                            }
                        }
                    }
                    // Ray through fully-empty space: pure background.
                    Some(_) => {}
                }
            }
            bws.rays.end_ray();
        }
    }
    let points = bws.positions.len() as u64;
    let sampled_grid = points > 0;
    bws.encode(model, &mut NullBranchObserver);
    bws.heads_forward(model);
    bws.composite_all(opts.background);
    for r in 0..rays {
        if bws.rays.ray_range(r).is_empty() {
            colors[r] = opts.background;
            depths[r] = 0.0;
        } else {
            let out = bws.output(r);
            colors[r] = out.color;
            depths[r] = out.depth;
        }
    }
    (sampled_grid, points)
}

/// Renders one full view through the tile path at full budget — the
/// one-shot client the eval layer wraps. Workspaces come from the
/// process-wide [`shared_pool`], so repeated calls allocate nothing after
/// warmup.
pub fn render_view(
    model: &NerfModel,
    camera: &Camera,
    samples_per_ray: usize,
    background: Vec3,
    occ: Option<&OccupancyGrid>,
) -> (RgbImage, DepthImage) {
    let mut sched = FrameScheduler::new(*camera, RenderOptions::new(samples_per_ray, background));
    sched.render_frame(model, occ, FrameBudget::full(), shared_pool());
    sched.frame()
}

/// The process-wide workspace pool backing the one-shot
/// [`render_view`] / eval path. Serve fleets pass their own pool instead
/// so preview rendering and training slices share workspaces.
pub fn shared_pool() -> &'static WorkspacePool {
    static POOL: OnceLock<WorkspacePool> = OnceLock::new();
    POOL.get_or_init(WorkspacePool::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_covers_frame_without_overlap() {
        for (w, h, tile) in [(1, 1, 16), (13, 9, 4), (16, 16, 16), (17, 5, 7), (3, 40, 8)] {
            let layout = TileLayout::new(w, h, tile);
            let mut covered = vec![0u8; (w * h) as usize];
            for i in 0..layout.tile_count() {
                let r = layout.tile_rect(i);
                assert!(r.w >= 1 && r.h >= 1);
                assert!(r.x0 + r.w <= w && r.y0 + r.h <= h);
                for dy in 0..r.h {
                    for dx in 0..r.w {
                        covered[((r.y0 + dy) * w + r.x0 + dx) as usize] += 1;
                    }
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "{w}x{h}/{tile} not a partition"
            );
        }
    }

    #[test]
    #[should_panic(expected = "tile size")]
    fn zero_tile_size_panics() {
        let _ = TileLayout::new(4, 4, 0);
    }

    #[test]
    fn budget_constructors() {
        assert_eq!(FrameBudget::full().max_tiles, None);
        assert_eq!(FrameBudget::tiles(3).max_tiles, Some(3));
        assert!(FrameBudget::time(Duration::from_millis(5))
            .max_time
            .is_some());
    }
}
