//! Minimal 3D vector / ray / box math used across the reproduction.
//!
//! Everything here is deliberately plain `f32` math: the paper's accelerator
//! computes in fp16 with f32 accumulation, and all performance-relevant
//! quantisation happens in [`crate::fp16`], not here.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub};

/// A 3-component single-precision vector (point, direction or RGB color).
///
/// # Example
///
/// ```
/// use instant3d_nerf::math::Vec3;
/// let v = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(v.norm(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit x axis.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit y axis.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit z axis.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the unit vector pointing in the same direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector is (numerically) zero-length.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize a zero-length vector");
        self / n
    }

    /// Component-wise product.
    #[inline]
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// The smallest component.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// The largest component.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Component-wise clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: f32, hi: f32) -> Vec3 {
        Vec3::new(
            self.x.clamp(lo, hi),
            self.y.clamp(lo, hi),
            self.z.clamp(lo, hi),
        )
    }

    /// Linear interpolation `self * (1 - t) + other * t`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f32) -> Vec3 {
        self * (1.0 - t) + other * t
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f32 {
        (self - other).norm()
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    /// Indexed component access (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f32) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// A ray `r(t) = o + t·d` (Step ② of the pipeline maps pixels to rays).
///
/// # Example
///
/// ```
/// use instant3d_nerf::math::{Ray, Vec3};
/// let r = Ray::new(Vec3::ZERO, Vec3::X);
/// assert_eq!(r.at(2.0), Vec3::new(2.0, 0.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin (the camera center for primary rays).
    pub origin: Vec3,
    /// Ray direction; unit length for all rays produced by this crate.
    pub dir: Vec3,
}

impl Ray {
    /// Creates a ray; `dir` is used as-is (callers normalise when required).
    #[inline]
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray { origin, dir }
    }

    /// The point at parameter `t` along the ray.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }
}

/// An axis-aligned bounding box: the scene volume covered by the hash grids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// The canonical unit cube `[0,1]^3` used by the hash-grid encoding.
    pub const UNIT: Aabb = Aabb {
        min: Vec3::ZERO,
        max: Vec3::ONE,
    };

    /// Creates a box from its two extreme corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any `min` component exceeds `max`.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y && min.z <= max.z);
        Aabb { min, max }
    }

    /// A cube centred at `center` with half-extent `half`.
    #[inline]
    pub fn cube(center: Vec3, half: f32) -> Self {
        Aabb::new(center - Vec3::splat(half), center + Vec3::splat(half))
    }

    /// Box edge lengths.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Geometric center of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// The diagonal length of the box.
    #[inline]
    pub fn diagonal(&self) -> f32 {
        self.extent().norm()
    }

    /// True if `p` lies inside (or on the surface of) the box.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.y >= self.min.y
            && p.z >= self.min.z
            && p.x <= self.max.x
            && p.y <= self.max.y
            && p.z <= self.max.z
    }

    /// Maps a world-space point into the unit cube of this box.
    ///
    /// Points outside the box map outside `[0,1]^3`; the hash grid clamps.
    #[inline]
    pub fn to_unit(&self, p: Vec3) -> Vec3 {
        let e = self.extent();
        Vec3::new(
            (p.x - self.min.x) / e.x,
            (p.y - self.min.y) / e.y,
            (p.z - self.min.z) / e.z,
        )
    }

    /// Inverse of [`Aabb::to_unit`].
    #[inline]
    pub fn from_unit(&self, u: Vec3) -> Vec3 {
        self.min + self.extent().mul_elem(u)
    }

    /// Ray/box intersection via the slab method.
    ///
    /// Returns the entry/exit parameters `(t_near, t_far)` clipped to
    /// `t >= 0`, or `None` when the ray misses the box entirely.
    pub fn intersect(&self, ray: &Ray) -> Option<(f32, f32)> {
        let mut t0 = 0.0f32;
        let mut t1 = f32::INFINITY;
        for axis in 0..3 {
            let (o, d, lo, hi) = match axis {
                0 => (ray.origin.x, ray.dir.x, self.min.x, self.max.x),
                1 => (ray.origin.y, ray.dir.y, self.min.y, self.max.y),
                _ => (ray.origin.z, ray.dir.z, self.min.z, self.max.z),
            };
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
                continue;
            }
            let inv = 1.0 / d;
            let (mut ta, mut tb) = ((lo - o) * inv, (hi - o) * inv);
            if ta > tb {
                std::mem::swap(&mut ta, &mut tb);
            }
            t0 = t0.max(ta);
            t1 = t1.min(tb);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }

    /// Grows the box to include point `p`.
    #[inline]
    pub fn expand_to(&mut self, p: Vec3) {
        self.min = self.min.min_elem(p);
        self.max = self.max.max_elem(p);
    }

    /// The union of two boxes.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb::new(self.min.min_elem(other.min), self.max.max_elem(other.max))
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::UNIT
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

/// Scalar linear interpolation.
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a * (1.0 - t) + b * t
}

/// Smoothstep (3t² − 2t³) on `[0, 1]`, clamping outside.
#[inline]
pub fn smoothstep(t: f32) -> f32 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn vec3_dot_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        let a = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(a.dot(a), a.norm_squared());
    }

    #[test]
    fn vec3_normalized_is_unit() {
        let v = Vec3::new(3.0, -4.0, 12.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vec3_lerp_endpoints() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(2.0, 4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.5, 2.5, 4.5));
    }

    #[test]
    fn vec3_minmax_elem() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min_elem(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max_elem(b), Vec3::new(2.0, 5.0, 3.0));
        assert_eq!(a.min_component(), 1.0);
        assert_eq!(a.max_component(), 5.0);
    }

    #[test]
    fn vec3_index_matches_fields() {
        let a = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(a[0], a.x);
        assert_eq!(a[1], a.y);
        assert_eq!(a[2], a.z);
    }

    #[test]
    #[should_panic]
    fn vec3_index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn ray_at_parameterisation() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(r.at(0.0), r.origin);
        assert_eq!(r.at(3.0), Vec3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn aabb_contains_and_unit_mapping() {
        let b = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
        assert!(b.contains(Vec3::ZERO));
        assert!(!b.contains(Vec3::new(2.0, 0.0, 0.0)));
        let u = b.to_unit(Vec3::ZERO);
        assert_eq!(u, Vec3::splat(0.5));
        assert_eq!(b.from_unit(u), Vec3::ZERO);
    }

    #[test]
    fn aabb_ray_intersection_hit_and_miss() {
        let b = Aabb::UNIT;
        let hit = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
        let (t0, t1) = b.intersect(&hit).expect("ray should hit");
        assert!((t0 - 1.0).abs() < 1e-6);
        assert!((t1 - 2.0).abs() < 1e-6);

        let miss = Ray::new(Vec3::new(-1.0, 2.0, 0.5), Vec3::X);
        assert!(b.intersect(&miss).is_none());
    }

    #[test]
    fn aabb_intersect_ray_starting_inside() {
        let b = Aabb::UNIT;
        let r = Ray::new(Vec3::splat(0.5), Vec3::X);
        let (t0, t1) = b.intersect(&r).unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn aabb_union_and_expand() {
        let mut a = Aabb::UNIT;
        a.expand_to(Vec3::new(2.0, -1.0, 0.5));
        assert!(a.contains(Vec3::new(2.0, -1.0, 0.5)));
        let b = Aabb::cube(Vec3::splat(5.0), 1.0);
        let u = a.union(&b);
        assert!(u.contains(Vec3::splat(5.5)));
        assert!(u.contains(Vec3::ZERO));
    }

    #[test]
    fn scalar_helpers() {
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
        assert_eq!(smoothstep(0.0), 0.0);
        assert_eq!(smoothstep(1.0), 1.0);
        assert_eq!(smoothstep(0.5), 0.5);
        assert_eq!(smoothstep(-1.0), 0.0);
        assert_eq!(smoothstep(2.0), 1.0);
    }
}
