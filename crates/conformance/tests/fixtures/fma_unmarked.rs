// Fixture: linted as if it were a strict kernel module
// (crates/nerf/src/grid.rs). Not compiled — driven via include_str!.

fn strict_kernel(a: f32, b: f32, c: f32) -> f32 {
    // VIOLATION: fused multiply-add in a strict module, no marker.
    a.mul_add(b, c)
}

// CONTRACT: lossy-tier — fused helper backing the fast backend only.
#[inline]
fn lossy_helper(a: f32, b: f32, c: f32) -> f32 {
    a.mul_add(b, c)
}

fn plain(a: f32, b: f32, c: f32) -> f32 {
    a * b + c
}
