//! The dynamic disjoint-write race detector backend.
//!
//! [`CheckedKernels`] (`"checked"`) is a strict-tier backend that wraps
//! [`SimdKernels`] and *executes* the two halves of the disjoint-write
//! contract the engine's parallelism rests on (see the
//! [contract-enforcement docs](super#contract-enforcement)):
//!
//! 1. **Pairwise disjointness** — the write range of every
//!    [`Kernels::grid_scatter_level`] task, MLP gradient row-chunk task
//!    (recorded from inside the batched backward via
//!    [`GemvMode::Checked`](crate::mlp)), and compositing cache write is
//!    shadow-recorded in a process-wide [`WriteLedger`]; any overlap
//!    between two tasks of the same dispatch panics with **both** task
//!    identities and the clashing byte ranges.
//! 2. **Fixed accumulation order** — every kernel output is re-derived
//!    through the scalar reference kernels ([`ScalarKernels`]) and
//!    compared bit-for-bit, so a task that writes only its own range but
//!    reorders additions (the other way worker count leaks into results)
//!    panics too, naming the kernel and the first diverging element.
//!
//! The ledger tracks three kinds of evidence:
//!
//! * **Keyed epochs** for the grid scatter: tasks of one
//!   `par_backward_batch_with` dispatch share the `(grid, d_out)` key, so
//!   per-level slices are checked against each other even when a single
//!   worker runs them back to back. An epoch retires when all levels have
//!   reported (a complete dispatch) or resets when a level re-arrives (a
//!   new dispatch reusing the same buffers).
//! * **Scopes** for the MLP backward sweeps: `backward_batch_impl` opens
//!   a scope per parallel sweep and records each row/item chunk into it;
//!   entries accumulate until the sweep finishes, catching overlap even
//!   between chunks that never ran concurrently.
//! * **An active set** for everything in flight: encode chunks and
//!   compositing cache slices register while executing, catching
//!   cross-dispatch aliasing (two concurrent rays sharing cache rows).
//!
//! The backend is registered in the [`BackendRegistry`](super) as
//! `"checked"` and rides the CI strict backend × worker matrix, so the
//! disjoint-write contract is re-proven on every push instead of trusted.

use super::plan::ConcretePlan;
use super::{Kernels, ScalarKernels, SimdKernels};
use crate::grid::HashGrid;
use crate::math::Vec3;
use crate::mlp::{GemvMode, Mlp, MlpBatchWorkspace, MlpGradients};
use crate::render::RenderOutput;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Byte range of a `f32` slice in the process address space — the ledger
/// key for write-disjointness checks.
fn byte_range(s: &[f32]) -> (usize, usize) {
    let start = s.as_ptr() as usize;
    (start, start + std::mem::size_of_val(s))
}

fn overlaps(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

#[derive(Debug)]
struct Entry {
    /// Which task within the epoch (the grid level for scatter epochs; a
    /// running index for scopes — duplicates reset keyed epochs).
    task_key: u64,
    range: (usize, usize),
    task: String,
}

#[derive(Debug)]
struct Epoch {
    /// Identity of the dispatch: `(grid, d_out ptr, d_out len)` for the
    /// scatter; scopes use a unique synthetic key.
    key: (usize, usize, usize),
    /// Tasks expected in a complete dispatch; the epoch retires once all
    /// have reported (`usize::MAX` for scopes, which retire on drop).
    total_tasks: usize,
    label: String,
    entries: Vec<Entry>,
}

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    range: (usize, usize),
    task: String,
}

/// One registered [`ConcretePlan`]: the byte span it covers and the
/// declared per-task byte ranges every recorded write inside the span
/// must stay within (see [`WriteLedger::expect_plan`]).
#[derive(Debug)]
struct PlanExpectation {
    id: u64,
    site: &'static str,
    buffer: &'static str,
    /// Byte span of the whole planned output buffer.
    span: (usize, usize),
    /// Declared per-task byte ranges, in task order.
    tasks: Vec<(usize, usize)>,
}

/// The process-wide write ledger behind [`CheckedKernels`]: records the
/// write range and identity of every checked kernel task and panics —
/// naming both tasks — when two ranges of one dispatch overlap.
#[derive(Debug, Default)]
pub struct WriteLedger {
    epochs: Mutex<Vec<Epoch>>,
    active: Mutex<Vec<ActiveSpan>>,
    expectations: Mutex<Vec<PlanExpectation>>,
    next_id: AtomicU64,
}

/// Bounded epoch history: keyed epochs self-retire when complete, so this
/// only bounds leakage from dispatches aborted mid-flight (e.g. by an
/// unrelated test panic).
const MAX_EPOCHS: usize = 64;

impl WriteLedger {
    /// The ledger shared by the registered `"checked"` backend and the
    /// [`GemvMode::Checked`] recording hooks inside the MLP backward.
    pub fn global() -> &'static WriteLedger {
        static LEDGER: OnceLock<WriteLedger> = OnceLock::new();
        LEDGER.get_or_init(WriteLedger::default)
    }

    /// Poison-tolerant lock: a detected violation panics while the lock
    /// is held, and the negative tests must be able to keep using the
    /// ledger afterwards — the inner data is always left consistent.
    fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Forgets all recorded epochs, in-flight spans and plan
    /// expectations. Test hook: after a caught violation panic the
    /// aborted dispatch's entries are stale.
    pub fn reset(&self) {
        Self::lock(&self.epochs).clear();
        Self::lock(&self.active).clear();
        Self::lock(&self.expectations).clear();
    }

    /// Registers a dispatch's instantiated [`WritePlan`](super::WritePlan)
    /// as the ground truth for the buffer at `base`: until the returned
    /// guard drops, every write range recorded in the ledger that touches
    /// the plan's byte span must fall entirely inside **one** declared
    /// task range, or the ledger panics naming the dispatch site, the
    /// writing task, and the nearest declared range — the plan-conformance
    /// mode that keeps the statically proven plan from drifting away from
    /// the code (see the
    /// [contract-enforcement docs](super#contract-enforcement)).
    pub fn expect_plan(&self, plan: &ConcretePlan, base: *const f32) -> PlanGuard<'_> {
        let elem = std::mem::size_of::<f32>();
        let base = base as usize;
        // ORDERING: Relaxed — id uniqueness only (see `open_scope`).
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Self::lock(&self.expectations).push(PlanExpectation {
            id,
            site: plan.site,
            buffer: plan.buffer,
            span: (base, base + plan.len * elem),
            tasks: plan
                .tasks
                .iter()
                .map(|&(s, e)| (base + s * elem, base + e * elem))
                .collect(),
        });
        PlanGuard { ledger: self, id }
    }

    /// Asserts a recorded write range conforms to every registered plan
    /// expectation whose span it touches (zero-length writes are vacuous).
    fn check_plan(&self, task: &str, range: (usize, usize)) {
        if range.0 >= range.1 {
            return;
        }
        let expectations = Self::lock(&self.expectations);
        for exp in expectations.iter() {
            if !overlaps(exp.span, range) {
                continue;
            }
            if exp.tasks.iter().any(|&(s, e)| s <= range.0 && range.1 <= e) {
                continue;
            }
            // The nearest declared range makes the drift diagnostic
            // actionable: it is the task the write was presumably meant
            // to stay inside.
            let nearest = exp
                .tasks
                .iter()
                .min_by_key(|&&(s, e)| {
                    (range.0 as i128 - s as i128).unsigned_abs()
                        + (range.1 as i128 - e as i128).unsigned_abs()
                })
                .copied();
            let nearest = match nearest {
                Some((s, e)) => format!("nearest declared task range 0x{s:x}..0x{e:x}"),
                None => "the plan declares no task ranges".to_string(),
            };
            let msg = format!(
                "checked backend: write-plan drift at `{}`: task `{task}` writes \
                 0x{:x}..0x{:x} outside the statically declared plan for buffer \
                 `{}`; {nearest}",
                exp.site, range.0, range.1, exp.buffer
            );
            drop(expectations);
            // PANICS: a real write escaping the statically proven plan
            // voids the disjointness proof — plan conformance requires
            // aborting with both ranges, exactly like an observed overlap.
            panic!("{msg}");
        }
    }

    /// Records one task of a keyed dispatch epoch, panicking (with both
    /// task identities) when its write range overlaps another task already
    /// recorded in the same epoch.
    fn record_keyed(
        &self,
        key: (usize, usize, usize),
        label: &str,
        total_tasks: usize,
        task_key: u64,
        task: String,
        range: (usize, usize),
    ) {
        // Plan conformance first, before the epoch lock (the two checks
        // take their locks one at a time, in a fixed order).
        self.check_plan(&task, range);
        let mut epochs = Self::lock(&self.epochs);
        let idx = match epochs.iter().position(|e| e.key == key) {
            Some(i) => i,
            None => {
                if epochs.len() >= MAX_EPOCHS {
                    epochs.remove(0);
                }
                epochs.push(Epoch {
                    key,
                    total_tasks,
                    label: label.to_string(),
                    entries: Vec::new(),
                });
                epochs.len() - 1
            }
        };
        let epoch = &mut epochs[idx];
        if epoch.entries.iter().any(|e| e.task_key == task_key) {
            // The same task arriving again means a new dispatch is reusing
            // the buffers; the previous epoch's evidence is obsolete.
            epoch.entries.clear();
        }
        if let Some(prev) = epoch.entries.iter().find(|e| overlaps(e.range, range)) {
            let msg = violation(&epoch.label, &task, range, &prev.task, prev.range);
            drop(epochs);
            // PANICS: two tasks of one dispatch claiming overlapping
            // ranges is a data race under the disjoint-write contract —
            // aborting with both identities is the detector's purpose.
            panic!("{msg}");
        }
        epoch.entries.push(Entry {
            task_key,
            range,
            task,
        });
        if epoch.entries.len() >= epoch.total_tasks {
            // Complete dispatch: every task reported disjoint. Retiring the
            // epoch keeps recycled allocations from colliding with stale
            // evidence.
            epochs.remove(idx);
        }
    }

    /// Opens a scope: a dispatch whose tasks are recorded via
    /// [`LedgerScope::record`] and whose evidence is discarded when the
    /// scope drops (the parallel sweep is over).
    pub(crate) fn open_scope(&self, label: String) -> LedgerScope<'_> {
        // ORDERING: Relaxed — the counter only needs uniqueness, no
        // cross-thread ordering; scope ids are never compared across
        // threads except for equality.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let key = (usize::MAX, id as usize, 0);
        let mut epochs = Self::lock(&self.epochs);
        if epochs.len() >= MAX_EPOCHS {
            epochs.remove(0);
        }
        epochs.push(Epoch {
            key,
            total_tasks: usize::MAX,
            label,
            entries: Vec::new(),
        });
        LedgerScope { ledger: self, key }
    }

    /// Marks a write range as in flight for the duration of the returned
    /// guard, panicking when it overlaps any other in-flight range.
    fn enter(&self, task: &str, ranges: &[(usize, usize)]) -> ActiveGuard<'_> {
        for &range in ranges {
            self.check_plan(task, range);
        }
        let mut active = Self::lock(&self.active);
        let mut ids = Vec::with_capacity(ranges.len());
        for &range in ranges {
            if let Some(prev) = active.iter().find(|s| overlaps(s.range, range)) {
                let msg = violation(
                    "concurrent kernel writes",
                    task,
                    range,
                    &prev.task,
                    prev.range,
                );
                drop(active);
                // PANICS: two in-flight kernels over overlapping ranges
                // is a live data race — abort with both identities.
                panic!("{msg}");
            }
            // ORDERING: Relaxed — id uniqueness only (see `open_scope`).
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            ids.push(id);
            active.push(ActiveSpan {
                id,
                range,
                task: task.to_string(),
            });
        }
        ActiveGuard { ledger: self, ids }
    }
}

/// A recording scope for one parallel sweep (see
/// [`WriteLedger::open_scope`]).
#[derive(Debug)]
pub(crate) struct LedgerScope<'l> {
    ledger: &'l WriteLedger,
    key: (usize, usize, usize),
}

impl LedgerScope<'_> {
    /// Records one task's write range into the scope, panicking with both
    /// task identities when it overlaps a previously recorded one.
    pub(crate) fn record(&self, task: String, range: (usize, usize)) {
        // Scope task keys are a running index: never equal, so recording
        // n chunks never triggers the keyed-epoch reset path.
        // ORDERING: Relaxed — id uniqueness only (see `open_scope`).
        let task_key = self.ledger.next_id.fetch_add(1, Ordering::Relaxed);
        self.ledger
            .record_keyed(self.key, "", usize::MAX, task_key, task, range);
    }
}

impl Drop for LedgerScope<'_> {
    fn drop(&mut self) {
        let mut epochs = WriteLedger::lock(&self.ledger.epochs);
        epochs.retain(|e| e.key != self.key);
    }
}

struct ActiveGuard<'l> {
    ledger: &'l WriteLedger,
    ids: Vec<u64>,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        let mut active = WriteLedger::lock(&self.ledger.active);
        active.retain(|s| !self.ids.contains(&s.id));
    }
}

/// Holds one registered plan expectation alive (see
/// [`WriteLedger::expect_plan`]); dropping it retires the expectation —
/// the dispatch is over and the buffer may be reused under a new plan.
#[derive(Debug)]
pub struct PlanGuard<'l> {
    ledger: &'l WriteLedger,
    id: u64,
}

impl Drop for PlanGuard<'_> {
    fn drop(&mut self) {
        let mut expectations = WriteLedger::lock(&self.ledger.expectations);
        expectations.retain(|e| e.id != self.id);
    }
}

fn violation(
    context: &str,
    new_task: &str,
    new_range: (usize, usize),
    prev_task: &str,
    prev_range: (usize, usize),
) -> String {
    format!(
        "checked backend: disjoint-write contract violation ({context}): \
         task `{new_task}` writes 0x{:x}..0x{:x} overlapping task `{prev_task}` \
         writes 0x{:x}..0x{:x}",
        new_range.0, new_range.1, prev_range.0, prev_range.1
    )
}

/// Panics with the kernel identity and first diverging element when a
/// checked kernel's bits differ from the scalar reference — the runtime
/// teeth of the fixed-accumulation-order half of the strict contract.
fn compare_bits(kernel: &str, checked: &[f32], reference: &[f32]) {
    assert_eq!(
        checked.len(),
        reference.len(),
        "checked backend: {kernel}: shadow shape mismatch"
    );
    for (i, (c, r)) in checked.iter().zip(reference).enumerate() {
        if c.to_bits() != r.to_bits() {
            // PANICS: a bit divergence from the scalar reference means
            // the backend broke the fixed accumulation order — the
            // checker exists to abort on exactly this.
            panic!(
                "checked backend: accumulation-order violation in {kernel}: \
                 element {i} is {c:e} (0x{:08x}) but the scalar reference \
                 (fixed point order) produced {r:e} (0x{:08x})",
                c.to_bits(),
                r.to_bits()
            );
        }
    }
}

fn compare_render(
    kernel: &str,
    checked: &(RenderOutput, usize),
    reference: &(RenderOutput, usize),
) {
    let flat = |o: &RenderOutput| {
        [
            o.color.x,
            o.color.y,
            o.color.z,
            o.depth,
            o.opacity,
            o.transmittance,
        ]
    };
    compare_bits(kernel, &flat(&checked.0), &flat(&reference.0));
    assert_eq!(
        checked.1, reference.1,
        "checked backend: {kernel}: integrated sample count diverged from the scalar reference"
    );
}

/// The `"checked"` strict-tier race-detector backend (see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckedKernels {
    inner: SimdKernels,
    reference: ScalarKernels,
}

impl CheckedKernels {
    /// A fresh checker (state lives in the shared [`WriteLedger`]).
    pub fn new() -> Self {
        CheckedKernels::default()
    }

    /// The ledger this backend records into.
    pub fn ledger(&self) -> &'static WriteLedger {
        WriteLedger::global()
    }
}

impl Kernels for CheckedKernels {
    fn name(&self) -> &'static str {
        "checked"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn plan_conformance(&self) -> bool {
        // The dispatch drivers register each seam's instantiated
        // `WritePlan` with the ledger, which then holds every recorded
        // write to the statically proven ranges.
        true
    }

    fn grid_encode_chunk(&self, grid: &HashGrid, unit_positions: &[Vec3], out: &mut [f32]) {
        let task = format!(
            "grid encode chunk ({} points -> 0x{:x})",
            unit_positions.len(),
            out.as_ptr() as usize
        );
        let _guard = self.ledger().enter(&task, &[byte_range(out)]);
        let mut shadow = out.to_vec();
        self.inner.grid_encode_chunk(grid, unit_positions, out);
        self.reference
            .grid_encode_chunk(grid, unit_positions, &mut shadow);
        compare_bits(&task, out, &shadow);
    }

    fn grid_encode_levels_chunk(
        &self,
        grid: &HashGrid,
        levels: &[usize],
        unit_positions: &[Vec3],
        out: &mut [f32],
    ) {
        let task = format!(
            "grid encode levels chunk (levels {levels:?}, {} points -> 0x{:x})",
            unit_positions.len(),
            out.as_ptr() as usize
        );
        let _guard = self.ledger().enter(&task, &[byte_range(out)]);
        // The level-subset encode must leave other levels' columns
        // untouched: the shadow starts from the same pre-state so any
        // out-of-subset write diverges the comparison.
        let mut shadow = out.to_vec();
        self.inner
            .grid_encode_levels_chunk(grid, levels, unit_positions, out);
        self.reference
            .grid_encode_levels_chunk(grid, levels, unit_positions, &mut shadow);
        compare_bits(&task, out, &shadow);
    }

    fn grid_scatter_level(
        &self,
        grid: &HashGrid,
        level: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    ) {
        let range = byte_range(level_grads);
        let task = format!(
            "grid scatter level {level} ({} points -> 0x{:x}..0x{:x})",
            unit_positions.len(),
            range.0,
            range.1
        );
        // All levels of one `par_backward_batch_with` dispatch share the
        // (grid, d_out) key — their slices of the flat gradient buffer
        // must be pairwise disjoint whether or not they run concurrently.
        self.ledger().record_keyed(
            (
                grid as *const HashGrid as usize,
                d_out.as_ptr() as usize,
                d_out.len(),
            ),
            "grid gradient scatter dispatch",
            grid.levels().len(),
            level as u64,
            task.clone(),
            range,
        );
        let _guard = self.ledger().enter(&task, &[range]);
        let mut shadow = level_grads.to_vec();
        self.inner
            .grid_scatter_level(grid, level, level_grads, unit_positions, d_out);
        self.reference
            .grid_scatter_level(grid, level, &mut shadow, unit_positions, d_out);
        compare_bits(&task, level_grads, &shadow);
    }

    fn mlp_forward_batch<'w>(
        &self,
        mlp: &Mlp,
        inputs: &[f32],
        ws: &'w mut MlpBatchWorkspace,
    ) -> &'w [f32] {
        let mut shadow_ws = mlp.batch_workspace(inputs.len() / mlp.in_dim().max(1));
        let shadow: Vec<f32> = mlp
            .forward_batch_impl(GemvMode::Scalar, inputs, &mut shadow_ws)
            .to_vec();
        let out = mlp.forward_batch_impl(GemvMode::Checked, inputs, ws);
        compare_bits("mlp forward batch", out, &shadow);
        out
    }

    fn mlp_backward_batch(
        &self,
        mlp: &Mlp,
        d_output: &[f32],
        ws: &mut MlpBatchWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    ) {
        // Scalar shadow first: the backward re-derives its upstream
        // gradient from `d_output` and only *reads* the forward
        // activations, so running it twice on the same workspace is safe.
        // Both runs start from the same gradient pre-state (gradients
        // accumulate across calls).
        let mut shadow_grads = grads.clone();
        let mut shadow_d_input = d_input.to_vec();
        mlp.backward_batch_impl(
            GemvMode::Scalar,
            d_output,
            ws,
            &mut shadow_grads,
            &mut shadow_d_input,
        );
        mlp.backward_batch_impl(GemvMode::Checked, d_output, ws, grads, d_input);
        for (i, ((gw, gb), (sw, sb))) in grads.layers.iter().zip(&shadow_grads.layers).enumerate() {
            compare_bits(
                &format!("mlp backward batch (layer {i} weight grads)"),
                gw,
                sw,
            );
            compare_bits(
                &format!("mlp backward batch (layer {i} bias grads)"),
                gb,
                sb,
            );
        }
        compare_bits("mlp backward batch (input grads)", d_input, &shadow_d_input);
        assert_eq!(
            grads.count, shadow_grads.count,
            "checked backend: mlp backward batch: accumulation count diverged"
        );
    }

    fn composite_ray(
        &self,
        t: &[f32],
        dt: &[f32],
        sigma: &[f32],
        rgb: &[Vec3],
        background: Vec3,
        cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
    ) -> (RenderOutput, usize) {
        match cache {
            None => {
                let real = self
                    .inner
                    .composite_ray(t, dt, sigma, rgb, background, None);
                let shadow = self
                    .reference
                    .composite_ray(t, dt, sigma, rgb, background, None);
                compare_render("composite ray", &real, &shadow);
                real
            }
            Some((weights, trans, oma)) => {
                let task = format!(
                    "composite ray ({} samples, cache -> 0x{:x})",
                    t.len(),
                    weights.as_ptr() as usize
                );
                // Concurrent rays (tile renderer workers) must own
                // disjoint cache rows.
                let _guard = self.ledger().enter(
                    &task,
                    &[byte_range(weights), byte_range(trans), byte_range(oma)],
                );
                // Early termination leaves the cache tail untouched: the
                // shadow starts from the same pre-state so the comparison
                // covers exactly what the kernel wrote.
                let mut sw = weights.to_vec();
                let mut st = trans.to_vec();
                let mut so = oma.to_vec();
                let real = self.inner.composite_ray(
                    t,
                    dt,
                    sigma,
                    rgb,
                    background,
                    Some((&mut *weights, &mut *trans, &mut *oma)),
                );
                let shadow = self.reference.composite_ray(
                    t,
                    dt,
                    sigma,
                    rgb,
                    background,
                    Some((&mut sw, &mut st, &mut so)),
                );
                compare_render(&task, &real, &shadow);
                compare_bits(&format!("{task} [weights]"), weights, &sw);
                compare_bits(&format!("{task} [trans]"), trans, &st);
                compare_bits(&format!("{task} [one_minus_alpha]"), oma, &so);
                real
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{HashGrid, HashGridConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn tiny_grid() -> HashGrid {
        HashGrid::new_random(
            HashGridConfig {
                levels: 3,
                log2_table_size: 9,
                base_resolution: 4,
                max_resolution: 32,
                ..HashGridConfig::default()
            },
            &mut StdRng::seed_from_u64(7),
        )
    }

    fn points(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let f = (i as f32 + 0.5) / n as f32;
                Vec3::new(f, (f * 7.3).fract(), (f * 3.1).fract())
            })
            .collect()
    }

    #[test]
    fn checked_matches_scalar_on_clean_dispatches() {
        let grid = tiny_grid();
        let backend = CheckedKernels::new();
        let pts = points(33);
        let w = grid.output_dim();
        let mut out = vec![0.0f32; pts.len() * w];
        backend.grid_encode_chunk(&grid, &pts, &mut out);
        let mut reference = vec![0.0f32; pts.len() * w];
        ScalarKernels.grid_encode_chunk(&grid, &pts, &mut reference);
        assert_eq!(out, reference);

        // A full, disjoint scatter dispatch passes and retires its epoch.
        let d_out = vec![0.125f32; pts.len() * w];
        let mut grads = grid.zero_grads();
        grid.par_backward_batch_with(
            &super::super::BackendHandle::new(backend),
            &pts,
            &d_out,
            &mut grads,
        );
        let mut ref_grads = grid.zero_grads();
        grid.par_backward_batch_with(&super::super::scalar(), &pts, &d_out, &mut ref_grads);
        assert_eq!(grads.values, ref_grads.values);
    }

    #[test]
    fn overlapping_scatter_write_panics_with_both_task_identities() {
        let grid = tiny_grid();
        let backend = CheckedKernels::new();
        let pts = points(9);
        let d_out = vec![0.25f32; pts.len() * grid.output_dim()];
        let mut grads = grid.zero_grads();
        let level_len = grads.values.len() / grid.levels().len();
        // Level 0 claims the buffer's head; level 1 then claims a slice
        // starting halfway into it — a seeded violation of the
        // disjoint-slicing invariant `par_backward_batch_with` upholds.
        // (The overlap is caught at record time, before either slice
        // shape could matter to the kernels.)
        let err = catch_unwind(AssertUnwindSafe(|| {
            backend.grid_scatter_level(&grid, 0, &mut grads.values[..level_len], &pts, &d_out);
            backend.grid_scatter_level(&grid, 1, &mut grads.values[level_len / 2..], &pts, &d_out);
        }))
        .expect_err("overlapping scatter slices must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is the diagnostic string");
        assert!(
            msg.contains("disjoint-write contract violation"),
            "names the contract: {msg}"
        );
        assert!(
            msg.contains("grid scatter level 1"),
            "names the offending task: {msg}"
        );
        assert!(
            msg.contains("grid scatter level 0"),
            "names the other task: {msg}"
        );
        // The aborted dispatch leaves stale evidence behind — discard it.
        WriteLedger::global().reset();
    }

    #[test]
    fn concurrent_overlap_in_the_active_set_panics() {
        let ledger = WriteLedger::default();
        let _a = ledger.enter("task A", &[(1000, 2000)]);
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _b = ledger.enter("task B", &[(1990, 2010)]);
        }))
        .expect_err("overlapping in-flight ranges must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("task B") && msg.contains("task A"), "{msg}");
        // Disjoint ranges enter fine, and guards release their spans.
        drop(ledger.enter("task C", &[(2000, 3000)]));
        drop(_a);
        let _d = ledger.enter("task D", &[(1500, 1600)]);
    }

    #[test]
    fn scope_records_catch_overlap_and_clear_on_drop() {
        let ledger = WriteLedger::default();
        {
            let scope = ledger.open_scope("sweep".to_string());
            scope.record("rows 0..4".to_string(), (0, 64));
            scope.record("rows 4..8".to_string(), (64, 128));
            let err = catch_unwind(AssertUnwindSafe(|| {
                scope.record("rows 3..5".to_string(), (48, 80));
            }))
            .expect_err("overlapping rows must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap();
            assert!(msg.contains("rows 3..5"), "{msg}");
        }
        // Scope dropped: the same ranges are recordable again.
        let scope = ledger.open_scope("sweep 2".to_string());
        scope.record("rows 0..8".to_string(), (0, 128));
    }

    #[test]
    fn plan_drift_is_caught_naming_site_and_both_ranges() {
        use crate::kernels::plan::WritePlan;
        let ledger = WriteLedger::default();
        let plan = WritePlan::chunked("plan.rs:1 demo_dispatch", "demo_out", "n", "chunk", None)
            .instantiate(&[("n", 10), ("chunk", 4)], &[]);
        let buf = [0.0f32; 10];
        let _guard = ledger.expect_plan(&plan, buf.as_ptr());
        let base = buf.as_ptr() as usize;
        // Writes inside a single declared task range conform…
        drop(ledger.enter("chunk 0", &[(base, base + 16)]));
        drop(ledger.enter("tail half", &[(base + 32, base + 36)]));
        // …a zero-length write is vacuous…
        drop(ledger.enter("empty", &[(base + 2, base + 2)]));
        // …but a write straddling two declared tasks is drift: the code
        // no longer matches the plan the prover verified.
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _g = ledger.enter("straddler", &[(base + 8, base + 24)]);
        }))
        .expect_err("a write escaping its declared task range must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("write-plan drift"), "{msg}");
        assert!(msg.contains("demo_dispatch"), "names the site: {msg}");
        assert!(msg.contains("straddler"), "names the writing task: {msg}");
        assert!(
            msg.contains("nearest declared task range"),
            "names the declared range: {msg}"
        );
        // The scope/record path is held to the plan too.
        let scope = ledger.open_scope("sweep".to_string());
        let err = catch_unwind(AssertUnwindSafe(|| {
            scope.record("rogue rows".to_string(), (base + 14, base + 18));
        }))
        .expect_err("recorded writes are checked against the plan");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(
            msg.contains("write-plan drift") && msg.contains("rogue rows"),
            "{msg}"
        );
    }

    #[test]
    fn plan_expectations_retire_with_their_guard() {
        use crate::kernels::plan::WritePlan;
        let ledger = WriteLedger::default();
        let plan = WritePlan::chunked("plan.rs:2 demo", "demo_out", "n", "chunk", None)
            .instantiate(&[("n", 8), ("chunk", 4)], &[]);
        let buf = [0.0f32; 8];
        let base = buf.as_ptr() as usize;
        {
            let _guard = ledger.expect_plan(&plan, buf.as_ptr());
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _g = ledger.enter("straddler", &[(base + 8, base + 24)]);
            }));
            assert!(err.is_err());
        }
        // Guard dropped: the same range is unconstrained again.
        drop(ledger.enter("straddler", &[(base + 8, base + 24)]));
    }

    #[test]
    fn shadow_comparison_rejects_reordered_accumulation() {
        let err = catch_unwind(|| {
            compare_bits("demo kernel", &[1.0, 2.0 + 1e-6], &[1.0, 2.0]);
        })
        .expect_err("bit divergence must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(
            msg.contains("accumulation-order violation") && msg.contains("demo kernel"),
            "{msg}"
        );
    }
}
