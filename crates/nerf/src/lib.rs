//! NeRF training substrate for the Instant-3D (ISCA 2023) reproduction.
//!
//! This crate implements, from scratch, every numerical building block the
//! paper's training pipeline needs:
//!
//! * [`math`] — 3-vectors, axis-aligned boxes, small numeric helpers.
//! * [`fp16`] — software half-precision storage (the accelerator computes in
//!   16-bit floats; grid features are stored rounded to fp16).
//! * [`camera`] — pinhole cameras, look-at poses and per-pixel ray generation
//!   (Step ② of the paper's six-step pipeline).
//! * [`hash`] — the spatial hash of Eq. 3 (`h = (π₁x ⊕ π₂y ⊕ π₃z) mod T`).
//! * [`grid`] — the multiresolution hash-grid encoding of Instant-NGP
//!   (Step ③-①): trilinear interpolation forward and gradient scatter
//!   backward, with optional access observers for trace capture. Batched
//!   SoA kernels (`encode_batch_into`, `par_encode_batch`,
//!   `backward_batch_into`, `par_backward_batch`) process whole point
//!   batches — level-major for cache locality, level-parallel for the
//!   scatter — with bit-identical results to the scalar kernels.
//! * [`kernels`] — the **open kernel-backend API**: the [`Kernels`] trait
//!   the batched engine dispatches through (grid encode / level-subset
//!   encode, per-level scatter, MLP forward/backward, compositing), the
//!   process-wide name registry powering `TrainConfig`, the
//!   `INSTANT3D_KERNEL_BACKEND` env override, bench IDs and workload
//!   stats, and three in-tree backends: the scalar reference
//!   ([`kernels::ScalarKernels`]), the lane-batched SIMD default
//!   ([`kernels::SimdKernels`]) and an instrumented co-simulation backend
//!   ([`kernels::InstrumentedKernels`]) that records live training
//!   address streams for the `instant3d-accel` FRM/BUM simulators.
//!   Registering a backend claims the **bit-identity contract**
//!   (additive-order-preserving, FMA-free — see the module docs); the
//!   differential suites iterate over every registered backend to pin it.
//! * [`simd`] — portable fixed-width SIMD lane types the SIMD backend's
//!   kernels are built on.
//! * [`sh`] — spherical-harmonics direction encoding for the color head.
//! * [`mlp`] — small fully-connected networks with hand-derived backprop
//!   (Step ③-②); `forward_batch` / `backward_batch` run whole batches
//!   over retained row-major activations (no re-forward in backward).
//! * [`adam`] — the Adam optimizer used for both grids and MLPs.
//! * [`render`] — classical volume rendering (Eq. 1), forward and backward
//!   (Steps ④–⑥).
//! * [`metrics`] — PSNR/MSE image metrics used throughout the evaluation.
//! * [`field`] — the `RadianceField` abstraction shared by analytic
//!   ground-truth scenes and learned models.
//! * [`sampler`] — pixel-batch and along-ray point samplers (Steps ①/③).
//! * [`occupancy`] — the density occupancy grid used to skip empty space.
//! * [`image`] — minimal RGB/depth image containers.
//!
//! # Example
//!
//! ```
//! use instant3d_nerf::grid::{HashGrid, HashGridConfig};
//! use instant3d_nerf::math::Vec3;
//!
//! let grid = HashGrid::new(HashGridConfig::default());
//! let emb = grid.encode(Vec3::new(0.3, 0.4, 0.5));
//! assert_eq!(emb.len(), grid.output_dim());
//! ```

pub mod activation;
pub mod adam;
pub mod camera;
pub mod encoding;
pub mod field;
pub mod fp16;
pub mod grid;
pub mod hash;
pub mod image;
pub mod kernels;
pub mod math;
pub mod metrics;
pub mod mlp;
pub mod occupancy;
pub mod render;
pub mod sampler;
pub mod sh;
pub mod simd;
pub mod ssim;

pub use camera::Camera;
pub use field::RadianceField;
pub use grid::{HashGrid, HashGridConfig};
pub use image::{DepthImage, RgbImage};
pub use kernels::{BackendHandle, Kernels};
pub use math::{Aabb, Ray, Vec3};
