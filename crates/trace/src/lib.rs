//! Memory-access trace capture and analysis for the Instant-3D accelerator
//! study (§4.2 of the paper).
//!
//! The paper's hardware design is motivated by three measured properties of
//! the embedding-grid access stream:
//!
//! * **Fig. 8** — the 8 corner addresses of each interpolation cube cluster
//!   into 4 groups of 2 (same y/z, differing x); inter-group distances are
//!   huge (amplified by π₂/π₃), intra-group distances tiny (π₁ = 1).
//! * **Fig. 9** — > 90 % of intra-group address distances fall in [-5, 5],
//!   consistently across training iterations.
//! * **Fig. 10** — within a 1000-access sliding window, feed-forward reads
//!   are (nearly) all unique while back-propagation updates revisit shared
//!   addresses (~200 unique per 1000), enabling the BUM unit's merging.
//!
//! [`capture::TraceCollector`] plugs into the trainer's observer hook and
//! records the *actual* training access stream; [`cluster`] and [`window`]
//! implement the paper's analyses; [`stats`] provides the histogram /
//! percentile plumbing.

pub mod capture;
pub mod cluster;
pub mod record;
pub mod stats;
pub mod window;

pub use capture::TraceCollector;
pub use record::{AccessRecord, Trace};
