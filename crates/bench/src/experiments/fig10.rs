//! Fig. 10 — unique addresses per 1000-access sliding window: the
//! feed-forward stream is (nearly) all unique, the back-propagation
//! update stream revisits shared embeddings — the BUM unit's opportunity.
//!
//! Ordering matters: our trainer walks rays sequentially, but a GPU (and
//! the accelerator's point streams) interleave points from many rays, so
//! consecutive FF accesses come from *different* rays' points. We report
//! both the raw ray-sequential capture and the batch-interleaved view
//! (a deterministic stride permutation standing in for warp interleaving).

use super::common::{capture_trace, synthetic_dataset};
use crate::table::Table;
use instant3d_core::TrainConfig;
use instant3d_trace::window::{summarize, unique_per_window, PAPER_WINDOW};

/// Reorders a stream with a prime-stride permutation, emulating the
/// batch-parallel interleaving a GPU's warps impose on per-point work.
fn batch_interleave(stream: &[u64]) -> Vec<u64> {
    let n = stream.len();
    if n < 2 {
        return stream.to_vec();
    }
    // A fixed prime stride co-prime with most lengths; fall back to +1.
    let mut stride = 977usize;
    while n.is_multiple_of(stride) || gcd(n, stride) != 1 {
        stride += 1;
    }
    (0..n).map(|i| stream[(i * stride) % n]).collect()
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Captures a training trace and prints the windowed-uniqueness series for
/// the FF and BP streams.
pub fn run(quick: bool) {
    crate::banner(
        "Fig. 10",
        "Unique accessed addresses within a 1000-access sliding window (FF vs BP)",
    );
    let cfg = crate::workloads::bench_config(TrainConfig::instant3d(), quick);
    let budget = if quick { 12 } else { 40 };
    let capture: Vec<u64> = vec![budget - 2, budget - 1];
    let ds = synthetic_dataset(2, quick, 1300);
    let (trace, _trainer) = capture_trace(&cfg, &ds, &capture, budget, 3_000_000, 1400);

    let ff_raw = trace.ff_stream();
    let ff_gpu = batch_interleave(&ff_raw);
    let bp = trace.bp_stream_level_major();
    let w = PAPER_WINDOW.min(ff_raw.len().max(1));

    let mut t = Table::new(&[
        "stream",
        "accesses",
        "windows",
        "mean unique / window",
        "min",
        "max",
        "unique fraction",
    ]);
    for (name, stream) in [
        ("FF (ray-sequential capture)", &ff_raw),
        ("FF (batch-interleaved, GPU view)", &ff_gpu),
        ("BP (level-major scatter)", &bp),
    ] {
        let s = summarize(stream, w, w);
        t.row_owned(vec![
            name.to_string(),
            stream.len().to_string(),
            s.windows.to_string(),
            format!("{:.0}", s.mean_unique),
            s.min_unique.to_string(),
            s.max_unique.to_string(),
            format!("{:.2}", s.mean_unique_fraction()),
        ]);
    }
    t.print();

    // A short sample of the BP series (the paper plots it over time).
    let series = unique_per_window(&bp, w, w);
    let preview: Vec<String> = series.iter().take(12).map(|c| c.to_string()).collect();
    println!(
        "\nBP unique-counts over successive windows: [{}]",
        preview.join(", ")
    );
    let ff_frac = summarize(&ff_gpu, w, w).mean_unique_fraction();
    let bp_frac = summarize(&bp, w, w).mean_unique_fraction();
    println!(
        "\nMeasured contrast: FF (GPU view) {:.0}% unique vs BP {:.0}% unique per\n\
         window. Paper: FF all-unique vs BP ~20% (~200/1000) — the headroom the\n\
         BUM converts into merged SRAM writes.",
        ff_frac * 100.0,
        bp_frac * 100.0
    );
}
