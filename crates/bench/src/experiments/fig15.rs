//! Fig. 15 — accelerator layout/specs and the area & energy breakdowns
//! (grid cores ≈ 78 % of area and ≈ 81 % of energy).

use crate::table::{pct, Table};
use instant3d_accel::energy::AreaModel;
use instant3d_accel::{Accelerator, FeatureSet};
use instant3d_core::PipelineWorkload;
use instant3d_devices::perf::ITERS_TO_PSNR25;

/// Prints the accelerator spec block and the area/energy breakdowns.
pub fn run(_quick: bool) {
    crate::banner(
        "Fig. 15",
        "Accelerator specifications, area and energy breakdown",
    );
    let area = AreaModel::default();
    let accel = Accelerator::default();
    let w = PipelineWorkload::paper_scale_instant3d(ITERS_TO_PSNR25);
    let r = accel.simulate(&w, FeatureSet::full());

    println!("Accelerator specs:");
    println!("  technology : 28 nm");
    println!("  area       : {:.1} mm^2 (paper: 6.8 mm^2)", area.total());
    println!("  voltage    : 1 V");
    println!("  frequency  : {:.0} MHz", accel.cfg.clock_hz / 1e6);
    println!(
        "  SRAM       : 1.5 MB total ({} KB hash-table banks)",
        accel.cfg.total_hash_sram_bytes() / 1024
    );
    println!(
        "  power      : {:.2} W average (paper: 1.9 W)\n",
        r.avg_power_w
    );

    let mut at = Table::new(&["component", "area (mm^2)", "share"]);
    for (name, mm2) in area.components() {
        at.row_owned(vec![
            name.to_string(),
            format!("{mm2:.2}"),
            pct(mm2 / area.total()),
        ]);
    }
    at.row_owned(vec![
        "TOTAL".into(),
        format!("{:.2}", area.total()),
        "100.0%".into(),
    ]);
    println!("Area breakdown:");
    at.print();
    println!(
        "grid cores (SRAM+FRM+BUM+logic): {} of area (paper: 78%)\n",
        pct(area.grid_fraction())
    );

    let e = r.energy_breakdown;
    let dynamic = e.grid_cores_j + e.mlp_j;
    let mut et = Table::new(&["component", "energy (mJ)", "share of dynamic"]);
    et.row_owned(vec![
        "grid cores".into(),
        format!("{:.2}", e.grid_cores_j * 1e3),
        pct(e.grid_cores_j / dynamic),
    ]);
    et.row_owned(vec![
        "MLP units".into(),
        format!("{:.2}", e.mlp_j * 1e3),
        pct(e.mlp_j / dynamic),
    ]);
    et.row_owned(vec![
        "DRAM".into(),
        format!("{:.2}", e.dram_j * 1e3),
        "-".into(),
    ]);
    et.row_owned(vec![
        "static/leakage".into(),
        format!("{:.2}", e.static_j * 1e3),
        "-".into(),
    ]);
    println!("Energy breakdown (one PSNR-25 training run):");
    et.print();
    println!(
        "grid-core share of dynamic energy: {} (paper: 81%)",
        pct(e.grid_fraction_dynamic())
    );
}
