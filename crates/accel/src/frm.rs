//! The Feed-forward Read Mapper (FRM) — §4.4, Fig. 12.
//!
//! Without the FRM, the grid core issues one interpolation burst (the 8
//! corner reads of one point) per SRAM access group. Because the 4 corner
//! groups land in only 2–4 distinct banks (the x-locality of the hash),
//! bank utilisation is 25–50 % and the burst serialises over several
//! cycles.
//!
//! The FRM holds a `reorder_depth`-deep window of pending read requests
//! (from *multiple nearby points*), detects bank collisions, and each cycle
//! commits a maximal conflict-free subset — "mapping multiple read requests
//! into one" and restoring near-full SRAM bandwidth.

use crate::sram::BankedSram;
use std::collections::VecDeque;

/// Result of replaying a read stream through the FRM or baseline issue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrmResult {
    /// Reads serviced.
    pub reads: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// Achieved bank utilisation (reads / (cycles × banks)).
    pub utilization: f64,
}

/// Replays `addrs` through an FRM with the given window depth over
/// `n_banks` banks. Each cycle, a greedy first-fit scan of the window
/// commits at most one request per bank (the Bank Collision Detector +
/// Read Commit Unit of Fig. 12(b)).
///
/// # Panics
///
/// Panics if `n_banks` or `window` is zero.
pub fn simulate_frm(addrs: &[u32], n_banks: u32, window: usize) -> FrmResult {
    assert!(n_banks > 0, "need at least one bank");
    assert!(window > 0, "window must be positive");
    let mut pending: VecDeque<u32> = VecDeque::with_capacity(window + 1);
    let mut next = 0usize;
    let mut cycles = 0u64;
    let mut reads = 0u64;
    let mut bank_busy = vec![false; n_banks as usize];

    while next < addrs.len() || !pending.is_empty() {
        // Fill the reorder window.
        while pending.len() < window && next < addrs.len() {
            pending.push_back(addrs[next]);
            next += 1;
        }
        // Greedy conflict-free commit: first request per free bank.
        bank_busy.fill(false);
        let mut committed = 0u32;
        let mut i = 0;
        while i < pending.len() {
            let bank = (pending[i] % n_banks) as usize;
            if !bank_busy[bank] {
                bank_busy[bank] = true;
                pending.remove(i);
                committed += 1;
                if committed == n_banks {
                    break;
                }
            } else {
                i += 1;
            }
        }
        cycles += 1;
        reads += committed as u64;
    }
    FrmResult {
        reads,
        cycles,
        utilization: if cycles == 0 {
            0.0
        } else {
            reads as f64 / (cycles as f64 * n_banks as f64)
        },
    }
}

/// Baseline (no FRM): issues each consecutive `burst`-sized group (one
/// point's corner reads) as a single SRAM access group, serialising on
/// bank conflicts — the "low utilisation read requests" of Fig. 12(a).
///
/// # Panics
///
/// Panics if `n_banks` or `burst` is zero.
pub fn simulate_baseline_reads(addrs: &[u32], n_banks: u32, burst: usize) -> FrmResult {
    assert!(burst > 0, "burst must be positive");
    let mut sram = BankedSram::new(n_banks);
    for chunk in addrs.chunks(burst) {
        sram.issue_reads(chunk);
    }
    FrmResult {
        reads: sram.reads(),
        cycles: sram.cycles(),
        utilization: sram.utilization(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic corner-burst stream with the paper's structure: per
    /// point, 4 groups at widely-separated base addresses, each group two
    /// x-adjacent addresses.
    fn corner_stream(points: usize, t: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(points * 8);
        for p in 0..points as u32 {
            // Nearby points share base addresses with small offsets.
            let bases = [
                (p * 3) % t,
                (60_000 + p * 5) % t,
                (120_000 + p * 7) % t,
                (200_000 + p * 2) % t,
            ];
            for b in bases {
                out.push(b % t);
                out.push((b + 1) % t);
            }
        }
        out
    }

    #[test]
    fn frm_services_every_read() {
        let addrs = corner_stream(100, 1 << 18);
        let r = simulate_frm(&addrs, 8, 16);
        assert_eq!(r.reads, addrs.len() as u64);
    }

    #[test]
    fn frm_beats_baseline_on_corner_bursts() {
        let addrs = corner_stream(500, 1 << 18);
        let base = simulate_baseline_reads(&addrs, 8, 8);
        let frm = simulate_frm(&addrs, 8, 16);
        assert_eq!(base.reads, frm.reads);
        assert!(
            frm.cycles < base.cycles,
            "FRM {} cycles should beat baseline {}",
            frm.cycles,
            base.cycles
        );
        assert!(frm.utilization > base.utilization);
    }

    #[test]
    fn baseline_utilization_matches_paper_range() {
        // Corner bursts: 8 reads over ≤4 distinct groups → 25-50 % util.
        let addrs = corner_stream(500, 1 << 18);
        let base = simulate_baseline_reads(&addrs, 8, 8);
        assert!(
            base.utilization <= 0.55 && base.utilization >= 0.2,
            "baseline utilization {} outside the paper's 25-50 % story",
            base.utilization
        );
    }

    #[test]
    fn frm_reaches_high_utilization() {
        let addrs = corner_stream(500, 1 << 18);
        let frm = simulate_frm(&addrs, 8, 16);
        assert!(
            frm.utilization > 0.6,
            "FRM utilization {} should approach full bandwidth",
            frm.utilization
        );
    }

    #[test]
    fn conflict_free_stream_is_one_read_per_bank_per_cycle() {
        let addrs: Vec<u32> = (0..64).collect();
        let r = simulate_frm(&addrs, 8, 16);
        assert_eq!(r.cycles, 8);
        assert_eq!(r.utilization, 1.0);
    }

    #[test]
    fn pathological_single_bank_stream_degrades_gracefully() {
        let addrs: Vec<u32> = (0..64).map(|i| i * 8).collect(); // all bank 0
        let r = simulate_frm(&addrs, 8, 16);
        assert_eq!(r.cycles, 64, "one per cycle max on a single bank");
        let base = simulate_baseline_reads(&addrs, 8, 8);
        assert_eq!(base.cycles, 64, "baseline is equally bound");
    }

    #[test]
    fn deeper_window_never_hurts() {
        let addrs = corner_stream(300, 1 << 18);
        let shallow = simulate_frm(&addrs, 8, 4);
        let deep = simulate_frm(&addrs, 8, 32);
        assert!(deep.cycles <= shallow.cycles);
    }

    #[test]
    fn empty_stream() {
        let r = simulate_frm(&[], 8, 16);
        assert_eq!(r.reads, 0);
        assert_eq!(r.cycles, 0);
        let b = simulate_baseline_reads(&[], 8, 8);
        assert_eq!(b.cycles, 0);
    }

    #[test]
    #[should_panic]
    fn zero_window_panics() {
        let _ = simulate_frm(&[1], 8, 0);
    }
}
