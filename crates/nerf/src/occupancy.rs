//! The density occupancy grid Instant-NGP uses to skip empty space.
//!
//! A coarse boolean voxelisation of the scene AABB, refreshed periodically
//! from the model's current density field. Rays skip samples that land in
//! unoccupied voxels, which is what brings the per-iteration point count
//! from `rays × samples` down to the ~200 k the paper reports.

use crate::math::{Aabb, Vec3};

/// A coarse boolean occupancy voxelisation of an AABB.
///
/// # Example
///
/// ```
/// use instant3d_nerf::occupancy::OccupancyGrid;
/// use instant3d_nerf::math::{Aabb, Vec3};
///
/// let mut occ = OccupancyGrid::new(Aabb::UNIT, 16);
/// occ.update_from_fn(|p| if p.x > 0.5 { 10.0 } else { 0.0 }, 1.0);
/// assert!(occ.occupied_at(Vec3::new(0.9, 0.5, 0.5)));
/// assert!(!occ.occupied_at(Vec3::new(0.1, 0.5, 0.5)));
/// ```
#[derive(Debug, Clone)]
pub struct OccupancyGrid {
    aabb: Aabb,
    resolution: u32,
    bits: Vec<bool>,
}

impl OccupancyGrid {
    /// Creates a fully-occupied grid (conservative start: nothing skipped
    /// until the first density update).
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn new(aabb: Aabb, resolution: u32) -> Self {
        assert!(resolution > 0, "resolution must be non-zero");
        OccupancyGrid {
            aabb,
            resolution,
            bits: vec![true; (resolution as usize).pow(3)],
        }
    }

    /// The grid's bounding volume.
    pub fn aabb(&self) -> Aabb {
        self.aabb
    }

    /// Cells per axis.
    pub fn resolution(&self) -> u32 {
        self.resolution
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.bits.len()
    }

    #[inline]
    fn cell_index(&self, p: Vec3) -> Option<usize> {
        let u = self.aabb.to_unit(p);
        if !(0.0..=1.0).contains(&u.x) || !(0.0..=1.0).contains(&u.y) || !(0.0..=1.0).contains(&u.z)
        {
            return None;
        }
        let r = self.resolution;
        let cx = ((u.x * r as f32) as u32).min(r - 1);
        let cy = ((u.y * r as f32) as u32).min(r - 1);
        let cz = ((u.z * r as f32) as u32).min(r - 1);
        Some((cx + cy * r + cz * r * r) as usize)
    }

    /// True when `p` lies in an occupied cell. Points outside the AABB are
    /// unoccupied by definition.
    #[inline]
    pub fn occupied_at(&self, p: Vec3) -> bool {
        match self.cell_index(p) {
            Some(i) => self.bits[i],
            None => false,
        }
    }

    /// Refreshes occupancy by evaluating `density` at every cell center and
    /// marking cells whose density exceeds `threshold`.
    pub fn update_from_fn<F: FnMut(Vec3) -> f32>(&mut self, mut density: F, threshold: f32) {
        let r = self.resolution;
        for cz in 0..r {
            for cy in 0..r {
                for cx in 0..r {
                    let center = self.aabb.from_unit(Vec3::new(
                        (cx as f32 + 0.5) / r as f32,
                        (cy as f32 + 0.5) / r as f32,
                        (cz as f32 + 0.5) / r as f32,
                    ));
                    let i = (cx + cy * r + cz * r * r) as usize;
                    self.bits[i] = density(center) > threshold;
                }
            }
        }
    }

    /// Like [`OccupancyGrid::update_from_fn`] but keeps a cell occupied if
    /// *either* the old or new state says so, decayed every `decay` calls —
    /// the exponential-moving-max style update Instant-NGP uses to avoid
    /// prematurely culling space early in training.
    pub fn update_ema<F: FnMut(Vec3) -> f32>(&mut self, mut density: F, threshold: f32) {
        let r = self.resolution;
        for cz in 0..r {
            for cy in 0..r {
                for cx in 0..r {
                    let center = self.aabb.from_unit(Vec3::new(
                        (cx as f32 + 0.5) / r as f32,
                        (cy as f32 + 0.5) / r as f32,
                        (cz as f32 + 0.5) / r as f32,
                    ));
                    let i = (cx + cy * r + cz * r * r) as usize;
                    self.bits[i] = self.bits[i] || density(center) > threshold;
                }
            }
        }
    }

    /// The world-space centers of all cells, in storage (x-fastest) order.
    pub fn cell_centers(&self) -> Vec<Vec3> {
        let r = self.resolution;
        let mut out = Vec::with_capacity(self.bits.len());
        for cz in 0..r {
            for cy in 0..r {
                for cx in 0..r {
                    out.push(self.aabb.from_unit(Vec3::new(
                        (cx as f32 + 0.5) / r as f32,
                        (cy as f32 + 0.5) / r as f32,
                        (cz as f32 + 0.5) / r as f32,
                    )));
                }
            }
        }
        out
    }

    /// Sets occupancy from a per-cell value buffer in [`cell_centers`] order
    /// (the trainer maintains a density EMA per cell and thresholds it here,
    /// following Instant-NGP's decayed occupancy update).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.num_cells()`.
    ///
    /// [`cell_centers`]: OccupancyGrid::cell_centers
    pub fn set_from_values(&mut self, values: &[f32], threshold: f32) {
        assert_eq!(values.len(), self.bits.len(), "cell value count mismatch");
        for (bit, &v) in self.bits.iter_mut().zip(values) {
            *bit = v > threshold;
        }
    }

    /// Fraction of cells currently occupied.
    pub fn occupancy_fraction(&self) -> f32 {
        self.bits.iter().filter(|&&b| b).count() as f32 / self.bits.len() as f32
    }

    /// Marks every cell occupied (used when resetting between scenes).
    pub fn fill(&mut self) {
        self.bits.fill(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_occupied() {
        let occ = OccupancyGrid::new(Aabb::UNIT, 4);
        assert_eq!(occ.occupancy_fraction(), 1.0);
        assert!(occ.occupied_at(Vec3::splat(0.5)));
        assert_eq!(occ.num_cells(), 64);
    }

    #[test]
    fn outside_aabb_is_unoccupied() {
        let occ = OccupancyGrid::new(Aabb::UNIT, 4);
        assert!(!occ.occupied_at(Vec3::splat(2.0)));
        assert!(!occ.occupied_at(Vec3::new(-0.1, 0.5, 0.5)));
    }

    #[test]
    fn update_culls_empty_half() {
        let mut occ = OccupancyGrid::new(Aabb::UNIT, 8);
        occ.update_from_fn(|p| if p.y > 0.5 { 5.0 } else { 0.0 }, 1.0);
        assert!(occ.occupied_at(Vec3::new(0.5, 0.9, 0.5)));
        assert!(!occ.occupied_at(Vec3::new(0.5, 0.1, 0.5)));
        assert!((occ.occupancy_fraction() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ema_update_never_culls_previously_occupied() {
        let mut occ = OccupancyGrid::new(Aabb::UNIT, 4);
        occ.update_from_fn(|p| if p.x > 0.5 { 5.0 } else { 0.0 }, 1.0);
        let before = occ.occupancy_fraction();
        // A new field that's empty everywhere must not shrink occupancy.
        occ.update_ema(|_| 0.0, 1.0);
        assert_eq!(occ.occupancy_fraction(), before);
        // But it can grow.
        occ.update_ema(|_| 5.0, 1.0);
        assert_eq!(occ.occupancy_fraction(), 1.0);
    }

    #[test]
    fn fill_resets_everything() {
        let mut occ = OccupancyGrid::new(Aabb::UNIT, 4);
        occ.update_from_fn(|_| 0.0, 1.0);
        assert_eq!(occ.occupancy_fraction(), 0.0);
        occ.fill();
        assert_eq!(occ.occupancy_fraction(), 1.0);
    }

    #[test]
    fn non_unit_aabb_mapping() {
        let aabb = Aabb::new(Vec3::new(-2.0, -2.0, -2.0), Vec3::new(2.0, 2.0, 2.0));
        let mut occ = OccupancyGrid::new(aabb, 4);
        occ.update_from_fn(|p| if p.norm() < 1.0 { 5.0 } else { 0.0 }, 1.0);
        assert!(occ.occupied_at(Vec3::ZERO));
        assert!(!occ.occupied_at(Vec3::new(1.9, 1.9, 1.9)));
    }

    #[test]
    #[should_panic]
    fn zero_resolution_panics() {
        let _ = OccupancyGrid::new(Aabb::UNIT, 0);
    }
}
