//! Stress tests for the work-stealing scheduler.
//!
//! Covers the failure modes the eager stand-in either sidestepped (it ran
//! nested regions inline) or got wrong (it flattened panic payloads):
//! oversubscribed nested regions, uneven task durations, panics under
//! active stealing, thread-count growth via `install`, and bit-identical
//! results across worker counts. The CI matrix re-runs this suite with
//! `RAYON_NUM_THREADS` ∈ {1, 4, 8}, so every test must hold from the
//! strictly-sequential pool up through oversubscription; `install(n)`
//! arms inside the tests pin specific counts on top of the ambient one.

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::sync::atomic::{AtomicUsize, Ordering};

fn pool(n: usize) -> rayon::ThreadPool {
    ThreadPoolBuilder::new().num_threads(n).build().unwrap()
}

/// A few microseconds of real work whose cost varies by item — enough
/// imbalance that lazy splitting + stealing must rebalance leaves.
fn spin_work(seed: u64) -> u64 {
    let mut x = seed | 1;
    let iters = 10 + (seed % 97) * 20;
    for _ in 0..iters {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

#[test]
fn uneven_task_durations_all_complete() {
    for threads in [1, 2, 8] {
        pool(threads).install(|| {
            let mut out = vec![0u64; 1024];
            out.par_chunks_mut(1).enumerate().for_each(|(i, slot)| {
                slot[0] = spin_work(i as u64);
            });
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, spin_work(i as u64), "item {i} lost or duplicated");
            }
        });
    }
}

#[test]
fn oversubscribed_nested_regions_participate() {
    // 8 apparent workers on however many cores the box has, three levels
    // of nesting: every level must run on the pool (not degrade inline)
    // and every leaf must execute exactly once.
    pool(8).install(|| {
        assert_eq!(rayon::current_num_threads(), 8);
        let hits = AtomicUsize::new(0);
        let mut outer = [0usize; 16];
        outer.par_chunks_mut(1).for_each(|o| {
            // Tasks inherit the spawner's apparent thread count on
            // whichever worker runs them.
            assert_eq!(rayon::current_num_threads(), 8);
            let mut mid = [0usize; 8];
            mid.par_chunks_mut(1).for_each(|m| {
                let inner_sum = AtomicUsize::new(0);
                (0..32usize).into_par_iter().for_each(|i| {
                    inner_sum.fetch_add(i, Ordering::Relaxed);
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                m[0] = inner_sum.load(Ordering::Relaxed);
            });
            o[0] = mid.iter().sum();
        });
        assert!(outer.iter().all(|&v| v == 8 * (31 * 32 / 2)));
        assert_eq!(hits.load(Ordering::Relaxed), 16 * 8 * 32);
    });
}

#[test]
fn nested_joins_complete_under_oversubscription() {
    fn tree_sum(lo: u64, hi: u64) -> u64 {
        if hi - lo <= 8 {
            (lo..hi).map(spin_work).fold(0u64, u64::wrapping_add)
        } else {
            let mid = lo + (hi - lo) / 2;
            let (a, b) = rayon::join(|| tree_sum(lo, mid), || tree_sum(mid, hi));
            a.wrapping_add(b)
        }
    }
    let expected = (0..512).map(spin_work).fold(0u64, u64::wrapping_add);
    for threads in [1, 8] {
        assert_eq!(pool(threads).install(|| tree_sum(0, 512)), expected);
    }
}

#[test]
fn panic_payload_survives_stealing() {
    // Run a wide region with plenty of concurrent work so the panicking
    // item is frequently executed by a thief, and assert the *original*
    // payload type and value reach the caller.
    #[derive(Debug, PartialEq)]
    struct Detonation(usize);

    for threads in [1, 2, 8] {
        let caught = pool(threads).install(|| {
            std::panic::catch_unwind(|| {
                let data = vec![0u8; 512];
                data.par_chunks(1).enumerate().for_each(|(i, _)| {
                    std::hint::black_box(spin_work(i as u64));
                    if i == 311 {
                        std::panic::panic_any(Detonation(i));
                    }
                });
            })
            .expect_err("region must propagate the panic")
        });
        let payload = caught
            .downcast_ref::<Detonation>()
            .expect("original payload must not be flattened to a string");
        assert_eq!(payload, &Detonation(311), "threads={threads}");
    }
}

#[test]
fn join_runs_second_half_even_when_first_panics_sequentially() {
    // The install(1) fast path must keep the documented both-halves-run
    // guarantee: `b`'s side effects happen even though `a` panicked.
    let b_ran = AtomicUsize::new(0);
    let caught = pool(1).install(|| {
        std::panic::catch_unwind(|| {
            rayon::join(
                || std::panic::panic_any(7usize),
                || {
                    b_ran.fetch_add(1, Ordering::Relaxed);
                },
            )
        })
        .expect_err("join must propagate")
    });
    assert_eq!(caught.downcast_ref::<usize>(), Some(&7));
    assert_eq!(b_ran.load(Ordering::Relaxed), 1, "b must still run");
}

#[test]
fn install_one_joins_stay_on_calling_thread_inside_parallel_tasks() {
    // An install(1) region nested inside a pool task must run its joins
    // sequentially on whichever thread executes the task — no deque
    // push, no stealing — per the ThreadPool contract.
    pool(8).install(|| {
        let data = [0u8; 64];
        data.par_chunks(1).for_each(|_| {
            pool(1).install(|| {
                let outer = std::thread::current().id();
                let (ta, tb) = rayon::join(
                    || std::thread::current().id(),
                    || std::thread::current().id(),
                );
                assert_eq!(ta, outer);
                assert_eq!(tb, outer);
            });
        });
    });
}

#[test]
fn join_prefers_first_closures_payload() {
    for threads in [1, 8] {
        let caught = pool(threads).install(|| {
            std::panic::catch_unwind(|| {
                rayon::join(
                    || std::panic::panic_any(41usize),
                    || std::panic::panic_any(String::from("second")),
                )
            })
            .expect_err("join must propagate")
        });
        assert_eq!(caught.downcast_ref::<usize>(), Some(&41));
    }
}

#[test]
fn scope_propagates_payload_after_completion() {
    let hits = AtomicUsize::new(0);
    let caught = pool(8)
        .install(|| {
            std::panic::catch_unwind(|| {
                rayon::scope(|s| {
                    for i in 0..64 {
                        let hits = &hits;
                        s.spawn(move || {
                            std::hint::black_box(spin_work(i as u64));
                            if i == 17 {
                                std::panic::panic_any(vec![17u32]);
                            }
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            })
        })
        .expect_err("scope must propagate");
    assert_eq!(caught.downcast_ref::<Vec<u32>>(), Some(&vec![17u32]));
    // The panicking task's siblings on other branches of the split tree
    // still ran; borrows (hits) were not released early.
    assert!(hits.load(Ordering::Relaxed) > 0);
}

#[test]
fn install_grows_pool_and_reports_actual_capacity() {
    // The shared registry starts at the RAYON_NUM_THREADS/default size;
    // installing a larger pool must actually grow it, so apparent ==
    // actual (the old stand-in reported n while capping real workers at
    // the startup default).
    let pool16 = pool(16);
    assert_eq!(pool16.current_num_threads(), 16);
    pool16.install(|| {
        assert_eq!(rayon::current_num_threads(), 16);
        // A region wide enough to occupy all 16 apparent workers
        // completes even when the box has fewer cores.
        let mut data = vec![0u32; 2048];
        data.par_chunks_mut(1)
            .enumerate()
            .for_each(|(i, c)| c[0] = i as u32);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    });
    // Beyond the 64-slot capacity, the request is clamped — reported
    // count never exceeds the workers that can exist.
    assert_eq!(pool(1_000_000).current_num_threads(), 64);
}

#[test]
fn results_are_bit_identical_across_worker_counts() {
    // The scheduler's determinism contract at the iterator level: a
    // region with disjoint writes and per-slot fixed arithmetic order
    // produces bit-identical floats for 1, 2 and 8 (oversubscribed)
    // workers — this is the property the engine's golden suites pin
    // end-to-end with real training runs.
    let run = |threads: usize| -> Vec<u32> {
        pool(threads).install(|| {
            let src: Vec<f32> = (0..4096).map(|i| (i as f32).sin()).collect();
            let mut dst = vec![0.0f32; 4096];
            dst.par_chunks_mut(3)
                .zip(src.par_chunks(3))
                .enumerate()
                .for_each(|(ci, (d, s))| {
                    for (k, (a, b)) in d.iter_mut().zip(s).enumerate() {
                        *a = b * 1.000_1 + (ci * 3 + k) as f32 * 1.5e-4;
                    }
                });
            dst.iter().map(|v| v.to_bits()).collect()
        })
    };
    let t1 = run(1);
    assert_eq!(t1, run(2), "t2 diverged from t1");
    assert_eq!(t1, run(8), "t8 diverged from t1");
}

#[test]
fn injected_region_interleaves_with_saturating_region() {
    use std::sync::Arc;
    // A big region keeps every worker deque saturated; a region injected
    // from a *different* external thread mid-flight must run (and
    // finish) before the big one drains. This is the periodic
    // injector-first poll in `find_work`: before it, the injector was
    // only checked after every deque ran dry, so a job submitted to a
    // busy pool waited for the entire in-flight region tree — one large
    // scene starved every co-scheduled small one in the serving layer.
    const ITEMS: usize = 8192;
    let done = Arc::new(AtomicUsize::new(0));
    let big = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            pool(4).install(|| {
                (0..ITEMS).into_par_iter().for_each(|i| {
                    // ~tens of µs of real work per item so the region
                    // stays in flight for a long, timing-safe window.
                    let mut x = i as u64 | 1;
                    for _ in 0..20_000 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                    }
                    std::hint::black_box(x);
                    done.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
    };
    // Wait until the big region is demonstrably in flight, then inject a
    // tiny region and record how far the big one had gotten when the
    // small one ran.
    while done.load(Ordering::Relaxed) < 64 {
        std::thread::yield_now();
    }
    let seen = pool(4).install(|| done.load(Ordering::Relaxed));
    assert!(
        seen < ITEMS,
        "injected region waited for the saturating region to drain ({seen}/{ITEMS})"
    );
    big.join().unwrap();
}

#[test]
fn map_collect_is_ordered_under_oversubscription() {
    pool(8).install(|| {
        let out: Vec<u64> = (0..2000usize)
            .into_par_iter()
            .map(|i| spin_work(i as u64))
            .collect();
        assert_eq!(out.len(), 2000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, spin_work(i as u64));
        }
    });
}

#[test]
fn repeated_regions_reach_steady_state() {
    // Back-to-back small regions (the engine's steady state: several
    // parallel dispatches per training step) must neither deadlock nor
    // leak pending jobs across regions.
    for threads in [1, 4] {
        pool(threads).install(|| {
            let mut data = vec![0u64; 256];
            for round in 0..500u64 {
                data.par_chunks_mut(16).for_each(|c| {
                    for v in c.iter_mut() {
                        *v = v.wrapping_add(round);
                    }
                });
            }
            let expected = (0..500u64).sum::<u64>();
            assert!(data.iter().all(|&v| v == expected));
        });
    }
}

#[test]
fn sleep_wake_cycles_never_lose_a_wakeup() {
    // Regression pin for the SeqCst sleep protocol in
    // `registry.rs::{idle_sleep, signal}` (see
    // crates/conformance/allowlists/atomics_protocol.txt). Each round
    // first lets every worker drain its deque and pass through
    // `idle_sleep` (stamp load → sleeper registration → stamp re-check),
    // then injects a fresh region: if `signal`'s stamp bump could be
    // reordered before a sleeper registers — which weakening either side
    // below SeqCst permits — a worker sleeps through the wakeup and the
    // region (on a 1-core-saturated box) never finishes. Completion of
    // all rounds is the assertion.
    let grown = pool(8);
    grown.install(|| {
        let completed = AtomicUsize::new(0);
        for round in 0..200usize {
            // Park window: workers that found no work register as
            // sleepers on the condvar.
            std::thread::sleep(std::time::Duration::from_millis(1));
            let hits = AtomicUsize::new(0);
            (0..64usize).into_par_iter().for_each(|i| {
                std::hint::black_box(spin_work((round * 64 + i) as u64));
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 64, "round {round}");
            completed.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(completed.load(Ordering::Relaxed), 200);
    });
}

#[test]
fn ambient_thread_count_respects_env() {
    // The driver re-runs this suite with RAYON_NUM_THREADS ∈ {1, 4, 8};
    // whatever the value, the default count must honour it (clamped to
    // the registry capacity) and regions must complete under it.
    let ambient = rayon::current_num_threads();
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        assert_eq!(ambient, n.min(64));
    } else {
        assert!(ambient >= 1);
    }
    let total = AtomicUsize::new(0);
    (0..333usize).into_par_iter().for_each(|i| {
        total.fetch_add(i, Ordering::Relaxed);
    });
    assert_eq!(total.load(Ordering::Relaxed), 332 * 333 / 2);
}
