//! The open kernel-backend API: the [`Kernels`] trait, the process-wide
//! [`BackendRegistry`], and the built-in backends.
//!
//! The batched SoA engine dispatches every hot kernel — grid encode /
//! level-subset encode, per-level gradient scatter, the MLP batched
//! forward/backward, and per-ray compositing — through a [`Kernels`] trait
//! object instead of a closed enum. Three backends ship in-tree:
//!
//! * [`ScalarKernels`] (`"scalar"`) — the scalar reference kernels, the
//!   executable specification every other backend is tested against.
//! * [`SimdKernels`] (`"simd"`, the default) — lane-batched SIMD kernels
//!   built on the [`crate::simd`] lane types.
//! * [`InstrumentedKernels`] (`"instrumented"`) — a co-simulation backend
//!   that wraps the SIMD kernels and, when recording is switched on,
//!   captures the hash-grid read/update address streams of real training
//!   steps for the `instant3d-accel` FRM/BUM cycle simulators — online
//!   Fig. 12/13-style utilisation measurement with no trace files.
//!
//! New backends register at runtime through [`register`]; everything that
//! names a backend — `TrainConfig::kernel_backend`, the
//! `INSTANT3D_KERNEL_BACKEND` environment variable, bench IDs,
//! `WorkloadStats::backend` — resolves through this one registry.
//!
//! # The bit-identity contract
//!
//! **Registering a backend is a claim that it is bit-identical to
//! [`ScalarKernels`]** on every kernel, for every batch size and worker
//! count. Concretely a conforming backend must preserve:
//!
//! * **Additive order** — for each output scalar, the sequence of IEEE 754
//!   additions (per-corner embedding accumulation, per-parameter gradient
//!   accumulation in point order, the GEMV's `i`-ascending sum, the
//!   sequential transmittance recurrence) is exactly the scalar kernel's.
//!   Batching may only group *independent* scalars.
//! * **No FMA** — every multiply-add is a distinct IEEE multiply followed
//!   by a distinct IEEE add; a fused multiply-add rounds once instead of
//!   twice and silently breaks bit-equality.
//! * **Exact elementwise math** — no approximate reciprocals/rsqrt/vector
//!   exp; transcendentals stay scalar per element.
//!
//! The contract is not on the honor system: the differential and golden
//! suites (`crates/nerf/tests/simd_differential.rs`,
//! `crates/nerf/tests/occupancy_differential.rs`,
//! `crates/core/tests/batched_equivalence.rs`, `tests/batched_equivalence.rs`)
//! iterate over [`registered`] backends, so a registered backend is pinned
//! against the scalar reference by the same harness that pins the SIMD
//! kernels. The CI matrix runs the full suite once per registered name.
//!
//! # Selecting a backend
//!
//! ```
//! use instant3d_nerf::kernels;
//!
//! // By name, through the registry (panics on unknown names, listing the
//! // registered ones):
//! let simd = kernels::resolve("simd");
//! assert_eq!(simd.name(), "simd");
//! // The built-ins have direct accessors:
//! assert_eq!(kernels::scalar().name(), "scalar");
//! // And the environment override used by the CI matrix:
//! let backend = kernels::from_env_or_default();
//! assert!(kernels::names().contains(&backend.name()));
//! ```

mod builtin;
mod instrumented;

pub use builtin::{ScalarKernels, SimdKernels};
pub use instrumented::{InstrumentedKernels, RecordedStreams, StreamSegment};

use crate::grid::HashGrid;
use crate::math::Vec3;
use crate::mlp::{Mlp, MlpBatchWorkspace, MlpGradients};
use crate::render::RenderOutput;
use std::any::Any;
use std::sync::{Arc, OnceLock, RwLock};

/// One interchangeable implementation of the batched engine's hot kernels.
///
/// Implementations must uphold the bit-identity contract documented at the
/// [module level](self): every method's numeric results must be
/// bit-identical to [`ScalarKernels`]'. The easiest way to satisfy it from
/// outside this crate is to delegate the numerics to a built-in backend
/// (see [`InstrumentedKernels`], which wraps [`SimdKernels`]); backends
/// with their own kernels should build on the observed scalar bodies
/// ([`HashGrid::encode_level_observed`], [`HashGrid::scatter_level_observed`])
/// or re-derive the scalar operation order exactly.
///
/// All methods take `&self` and may run concurrently from multiple rayon
/// workers (the grid methods are called once per disjoint chunk / level);
/// backends that need mutable state must synchronise it internally.
pub trait Kernels: Send + Sync + std::fmt::Debug {
    /// The registry name — stamped into bench IDs, `WorkloadStats`, and
    /// panic messages. Lowercase, stable, unique per registered backend.
    fn name(&self) -> &'static str;

    /// `self` as [`Any`], so callers holding a [`BackendHandle`] can
    /// downcast to a concrete backend (e.g. to flip
    /// [`InstrumentedKernels`] recording).
    fn as_any(&self) -> &dyn Any;

    /// Encodes one chunk of unit-cube points across **all** grid levels
    /// into the `chunk × output_dim` row-major SoA slice `out`.
    ///
    /// Called by [`HashGrid::par_encode_batch_with`] once per disjoint
    /// chunk (or once for the whole batch when the backend asks for
    /// [`Kernels::sequential_grid`] execution).
    fn grid_encode_chunk(&self, grid: &HashGrid, unit_positions: &[Vec3], out: &mut [f32]);

    /// Encodes one chunk for a **subset of levels**, leaving every other
    /// level's columns of `out` untouched (the occupancy cache's
    /// dirty-level refresh seam, [`HashGrid::par_encode_batch_levels_with`]).
    fn grid_encode_levels_chunk(
        &self,
        grid: &HashGrid,
        levels: &[usize],
        unit_positions: &[Vec3],
        out: &mut [f32],
    );

    /// Scatters the embedding gradients of one grid level: `level_grads`
    /// is that level's disjoint slice of the flat gradient buffer, and
    /// per-parameter accumulation must run in point order
    /// ([`HashGrid::par_backward_batch_with`] calls this once per level).
    fn grid_scatter_level(
        &self,
        grid: &HashGrid,
        level: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    );

    /// Batched MLP forward over row-major inputs; returns the output slice
    /// living inside `ws` (the seam behind [`Mlp::forward_batch_with`]).
    fn mlp_forward_batch<'w>(
        &self,
        mlp: &Mlp,
        inputs: &[f32],
        ws: &'w mut MlpBatchWorkspace,
    ) -> &'w [f32];

    /// Batched MLP backward for the most recent forward on `ws` (the seam
    /// behind [`Mlp::backward_batch_with`]).
    fn mlp_backward_batch(
        &self,
        mlp: &Mlp,
        d_output: &[f32],
        ws: &mut MlpBatchWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    );

    /// Composites one ray's SoA sample slices front-to-back (the seam
    /// behind [`crate::render::composite_slices_with`]). Returns the
    /// render output and the integrated (pre-early-termination) sample
    /// count; cache slices receive per-sample state when provided.
    fn composite_ray(
        &self,
        t: &[f32],
        dt: &[f32],
        sigma: &[f32],
        rgb: &[Vec3],
        background: Vec3,
        cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
    ) -> (RenderOutput, usize);

    /// When `true`, the grid drivers run this backend sequentially: encode
    /// as one whole-batch chunk, scatter level by level in level order —
    /// instead of fanning chunks/levels out on the rayon pool. Recording
    /// backends return `true` while capturing so the observed address
    /// stream has a deterministic order; numeric results are identical
    /// either way (chunking never changes bits).
    fn sequential_grid(&self) -> bool {
        false
    }
}

/// A shared, cheaply clonable handle to a registered (or ad-hoc) backend.
///
/// This is what flows through the engine: `TrainConfig::kernel_backend` →
/// `NerfModel` → `BatchWorkspace` / `OccupancyWorkspace` all hold a
/// `BackendHandle` and dispatch through it, instead of matching on an enum
/// at every call site. Handles compare equal iff their backend names do.
#[derive(Clone)]
pub struct BackendHandle(Arc<dyn Kernels>);

impl BackendHandle {
    /// Wraps a backend implementation in a handle. The handle does **not**
    /// register the backend — it is directly usable by the engine (a test
    /// can hand a private mock straight to `TrainConfig`), while
    /// [`register`] additionally makes it resolvable by name.
    pub fn new<K: Kernels + 'static>(kernels: K) -> Self {
        BackendHandle(Arc::new(kernels))
    }

    /// Wraps an existing shared backend.
    pub fn from_arc(kernels: Arc<dyn Kernels>) -> Self {
        BackendHandle(kernels)
    }

    /// Borrows the underlying trait object.
    pub fn as_dyn(&self) -> &dyn Kernels {
        &*self.0
    }

    /// Downcasts to a concrete backend type (e.g.
    /// [`InstrumentedKernels`]), if this handle wraps one.
    pub fn downcast_ref<K: Kernels + 'static>(&self) -> Option<&K> {
        self.0.as_any().downcast_ref::<K>()
    }
}

impl std::ops::Deref for BackendHandle {
    type Target = dyn Kernels;
    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl PartialEq for BackendHandle {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl Eq for BackendHandle {}

impl std::hash::Hash for BackendHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name().hash(state);
    }
}

impl std::fmt::Debug for BackendHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BackendHandle({})", self.name())
    }
}

impl std::fmt::Display for BackendHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide backend registry: an append-only, name-keyed list of
/// [`BackendHandle`]s, pre-seeded with the built-in backends in the order
/// `scalar`, `simd`, `instrumented`.
///
/// The free functions of this module ([`register`], [`get`], [`resolve`],
/// [`registered`], [`names`], [`from_env`]) are the public face; the
/// struct exists so the seeding happens exactly once.
struct BackendRegistry {
    backends: RwLock<Vec<BackendHandle>>,
}

impl BackendRegistry {
    fn global() -> &'static BackendRegistry {
        static REGISTRY: OnceLock<BackendRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| BackendRegistry {
            backends: RwLock::new(vec![
                BackendHandle::new(ScalarKernels),
                BackendHandle::new(SimdKernels),
                BackendHandle::new(InstrumentedKernels::new()),
            ]),
        })
    }
}

/// Registers a backend, making it resolvable by [`get`]/[`resolve`] (and
/// therefore selectable via `INSTANT3D_KERNEL_BACKEND` and picked up by
/// the test suites and benches that iterate [`registered`]).
///
/// Registration is an API-level promise that the backend upholds the
/// [bit-identity contract](self#the-bit-identity-contract); the
/// differential suites will hold it to that.
///
/// # Errors
///
/// Returns `Err` when a backend with the same name is already registered
/// (names are matched case-insensitively).
pub fn register<K: Kernels + 'static>(kernels: K) -> Result<BackendHandle, String> {
    let handle = BackendHandle::new(kernels);
    let mut backends = BackendRegistry::global().backends.write().unwrap();
    if let Some(existing) = backends
        .iter()
        .find(|b| b.name().eq_ignore_ascii_case(handle.name()))
    {
        return Err(format!(
            "kernel backend {:?} is already registered",
            existing.name()
        ));
    }
    backends.push(handle.clone());
    Ok(handle)
}

/// Looks a backend up by name (case-insensitive, surrounding whitespace
/// ignored).
pub fn get(name: &str) -> Option<BackendHandle> {
    let wanted = name.trim();
    BackendRegistry::global()
        .backends
        .read()
        .unwrap()
        .iter()
        .find(|b| b.name().eq_ignore_ascii_case(wanted))
        .cloned()
}

/// Resolves a backend by name.
///
/// # Panics
///
/// Panics on unknown names, listing every registered backend — a typo in
/// a config or CI matrix entry must fail loudly instead of silently
/// running the default backend.
pub fn resolve(name: &str) -> BackendHandle {
    get(name).unwrap_or_else(|| {
        panic!(
            "unknown kernel backend {:?}; registered backends: {}",
            name.trim(),
            quoted_names()
        )
    })
}

/// All registered backends, in registration order (built-ins first).
pub fn registered() -> Vec<BackendHandle> {
    BackendRegistry::global().backends.read().unwrap().clone()
}

/// The registered backend names, in registration order.
pub fn names() -> Vec<&'static str> {
    BackendRegistry::global()
        .backends
        .read()
        .unwrap()
        .iter()
        .map(|b| b.name())
        .collect()
}

fn quoted_names() -> String {
    names()
        .iter()
        .map(|n| format!("{n:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The scalar reference backend (always registered).
pub fn scalar() -> BackendHandle {
    get("scalar").expect("built-in scalar backend")
}

/// The lane-batched SIMD backend (always registered).
pub fn simd() -> BackendHandle {
    get("simd").expect("built-in simd backend")
}

/// The shared instrumented co-sim backend instance (always registered).
///
/// Note this is one process-wide instance: concurrent recorders would
/// interleave streams. Co-sim sessions that need isolation should wrap a
/// fresh [`InstrumentedKernels`] in a [`BackendHandle`] instead.
pub fn instrumented() -> BackendHandle {
    get("instrumented").expect("built-in instrumented backend")
}

/// The engine's default backend (`simd`).
pub fn default_backend() -> BackendHandle {
    simd()
}

/// The backend requested by `INSTANT3D_KERNEL_BACKEND`, if the variable is
/// set — the hook the CI matrix uses to force every registered backend
/// through the full suite.
///
/// # Panics
///
/// Panics when the variable names an unregistered backend (see
/// [`resolve`]).
pub fn from_env() -> Option<BackendHandle> {
    from_env_value(std::env::var("INSTANT3D_KERNEL_BACKEND").ok().as_deref())
}

/// [`from_env`]'s env-independent core, split out so the unknown-name
/// panic is testable without mutating process-global environment state.
/// The lookup is a plain registry resolution — no hand-rolled name
/// matching.
pub fn from_env_value(value: Option<&str>) -> Option<BackendHandle> {
    let v = value?;
    match get(v) {
        Some(handle) => Some(handle),
        None => panic!(
            "invalid INSTANT3D_KERNEL_BACKEND value {:?}; registered backends: {}",
            v.trim(),
            quoted_names()
        ),
    }
}

/// The env-var backend if set, otherwise [`default_backend`].
pub fn from_env_or_default() -> BackendHandle {
    from_env().unwrap_or_else(default_backend)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered_in_order() {
        let names = names();
        assert_eq!(&names[..3], &["scalar", "simd", "instrumented"]);
        assert_eq!(registered()[..3].len(), 3);
        assert_eq!(default_backend().name(), "simd");
    }

    #[test]
    fn lookup_is_case_and_whitespace_insensitive() {
        assert_eq!(get(" SIMD ").unwrap().name(), "simd");
        assert_eq!(resolve("Scalar").name(), "scalar");
        assert!(get("avx512").is_none());
    }

    #[test]
    fn handles_compare_and_print_by_name() {
        assert_eq!(scalar(), scalar());
        assert_ne!(scalar(), simd());
        assert_eq!(simd().to_string(), "simd");
        assert_eq!(format!("{:?}", scalar()), "BackendHandle(scalar)");
    }

    #[test]
    fn env_accepts_valid_and_unset_values() {
        assert!(from_env_value(None).is_none());
        assert_eq!(from_env_value(Some("scalar")).unwrap().name(), "scalar");
        assert_eq!(from_env_value(Some(" Simd ")).unwrap().name(), "simd");
        assert_eq!(
            from_env_value(Some("instrumented")).unwrap().name(),
            "instrumented"
        );
    }

    #[test]
    #[should_panic(expected = "invalid INSTANT3D_KERNEL_BACKEND value \"smid\"")]
    fn env_rejects_typos_loudly() {
        // A misspelled CI matrix entry must fail the run, not silently
        // re-test the default backend.
        let _ = from_env_value(Some("smid"));
    }

    #[test]
    #[should_panic(expected = "registered backends: \"scalar\", \"simd\", \"instrumented\"")]
    fn resolve_panic_lists_registered_names() {
        let _ = resolve("no-such-backend");
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        // The built-in name is taken, whatever the casing.
        #[derive(Debug)]
        struct Impostor;
        impl Kernels for Impostor {
            fn name(&self) -> &'static str {
                "SCALAR"
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn grid_encode_chunk(&self, _: &HashGrid, _: &[Vec3], _: &mut [f32]) {}
            fn grid_encode_levels_chunk(
                &self,
                _: &HashGrid,
                _: &[usize],
                _: &[Vec3],
                _: &mut [f32],
            ) {
            }
            fn grid_scatter_level(
                &self,
                _: &HashGrid,
                _: usize,
                _: &mut [f32],
                _: &[Vec3],
                _: &[f32],
            ) {
            }
            fn mlp_forward_batch<'w>(
                &self,
                _: &Mlp,
                _: &[f32],
                _: &'w mut MlpBatchWorkspace,
            ) -> &'w [f32] {
                &[]
            }
            fn mlp_backward_batch(
                &self,
                _: &Mlp,
                _: &[f32],
                _: &mut MlpBatchWorkspace,
                _: &mut MlpGradients,
                _: &mut [f32],
            ) {
            }
            fn composite_ray(
                &self,
                _: &[f32],
                _: &[f32],
                _: &[f32],
                _: &[Vec3],
                _: Vec3,
                _: Option<(&mut [f32], &mut [f32], &mut [f32])>,
            ) -> (RenderOutput, usize) {
                (RenderOutput::default(), 0)
            }
        }
        assert!(register(Impostor).is_err());
    }

    #[test]
    fn downcast_reaches_the_instrumented_backend() {
        let handle = instrumented();
        assert!(handle.downcast_ref::<InstrumentedKernels>().is_some());
        assert!(handle.downcast_ref::<ScalarKernels>().is_none());
        assert!(!handle.sequential_grid(), "recording starts off");
    }
}
