//! Eight procedural object scenes standing in for NeRF-Synthetic.
//!
//! Scene names mirror the Blender originals (chair, drums, ficus, hotdog,
//! lego, materials, mic, ship); each is an object-centric composition of
//! soft primitives in a roughly unit-scale volume, captured by an orbiting
//! camera rig like the Blender dataset's.

use crate::primitives::{Primitive, Shape};
use crate::scene::AnalyticScene;
use instant3d_nerf::math::Vec3;

/// Names of the eight scenes, in index order.
pub const SCENE_NAMES: [&str; 8] = [
    "chair",
    "drums",
    "ficus",
    "hotdog",
    "lego",
    "materials",
    "mic",
    "ship",
];

/// Number of synthetic scenes.
pub const NUM_SCENES: usize = SCENE_NAMES.len();

/// Builds synthetic scene `index` (0..8).
///
/// # Panics
///
/// Panics if `index >= 8`.
pub fn build_scene(index: usize) -> AnalyticScene {
    assert!(index < NUM_SCENES, "scene index out of range: {index}");
    match index {
        0 => chair(),
        1 => drums(),
        2 => ficus(),
        3 => hotdog(),
        4 => lego(),
        5 => materials(),
        6 => mic(),
        _ => ship(),
    }
}

/// All eight scenes.
pub fn all_scenes() -> Vec<AnalyticScene> {
    (0..NUM_SCENES).map(build_scene).collect()
}

fn chair() -> AnalyticScene {
    let wood = Vec3::new(0.55, 0.35, 0.2);
    let mut prims = vec![
        // Seat.
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(0.0, -0.1, 0.0),
                half: Vec3::new(0.35, 0.05, 0.35),
            },
            40.0,
            wood,
        ),
        // Backrest.
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(0.0, 0.3, -0.3),
                half: Vec3::new(0.35, 0.35, 0.05),
            },
            40.0,
            wood * 1.1,
        ),
    ];
    // Four legs.
    for (sx, sz) in [(-1.0, -1.0), (-1.0, 1.0), (1.0, -1.0), (1.0, 1.0)] {
        prims.push(Primitive::matte(
            Shape::Cylinder {
                center: Vec3::new(0.28 * sx, -0.4, 0.28 * sz),
                radius: 0.05,
                half_height: 0.25,
            },
            40.0,
            Vec3::new(0.35, 0.22, 0.12),
        ));
    }
    AnalyticScene::new("chair", prims)
}

fn drums() -> AnalyticScene {
    let mut prims = Vec::new();
    // Three drum shells of different sizes.
    let shells = [
        (Vec3::new(-0.35, -0.15, 0.1), 0.22, 0.18),
        (Vec3::new(0.3, -0.2, 0.15), 0.18, 0.14),
        (Vec3::new(0.0, -0.25, -0.3), 0.26, 0.2),
    ];
    for (i, &(c, r, h)) in shells.iter().enumerate() {
        prims.push(Primitive::glossy(
            Shape::Cylinder {
                center: c,
                radius: r,
                half_height: h,
            },
            45.0,
            Vec3::new(0.7, 0.1 + 0.2 * i as f32, 0.15),
            0.4,
        ));
    }
    // Cymbals: thin glossy boxes.
    for &(x, y) in &[(-0.45f32, 0.3f32), (0.45, 0.35)] {
        prims.push(Primitive::glossy(
            Shape::Box {
                center: Vec3::new(x, y, 0.0),
                half: Vec3::new(0.2, 0.015, 0.2),
            },
            60.0,
            Vec3::new(0.85, 0.75, 0.3),
            0.8,
        ));
    }
    AnalyticScene::new("drums", prims)
}

fn ficus() -> AnalyticScene {
    let mut prims = vec![
        // Pot.
        Primitive::matte(
            Shape::Cylinder {
                center: Vec3::new(0.0, -0.45, 0.0),
                radius: 0.2,
                half_height: 0.15,
            },
            50.0,
            Vec3::new(0.6, 0.3, 0.2),
        ),
        // Trunk.
        Primitive::matte(
            Shape::Cylinder {
                center: Vec3::new(0.0, -0.05, 0.0),
                radius: 0.04,
                half_height: 0.3,
            },
            50.0,
            Vec3::new(0.4, 0.25, 0.12),
        ),
    ];
    // Foliage: a cloud of Gaussian blobs (the fine geometry the paper's
    // Fig. 5 shows densities struggling to learn).
    let golden = std::f32::consts::PI * (3.0 - 5f32.sqrt());
    for i in 0..14 {
        let a = golden * i as f32;
        let r = 0.1 + 0.25 * (i as f32 / 14.0);
        let y = 0.25 + 0.35 * (i as f32 % 5.0) / 5.0;
        prims.push(Primitive::matte(
            Shape::Blob {
                center: Vec3::new(r * a.cos(), y, r * a.sin()),
                sigma: 0.09,
            },
            30.0,
            Vec3::new(0.1, 0.45 + 0.02 * (i % 4) as f32, 0.12),
        ));
    }
    AnalyticScene::new("ficus", prims)
}

fn hotdog() -> AnalyticScene {
    AnalyticScene::new(
        "hotdog",
        vec![
            // Plate.
            Primitive::glossy(
                Shape::Cylinder {
                    center: Vec3::new(0.0, -0.3, 0.0),
                    radius: 0.5,
                    half_height: 0.03,
                },
                55.0,
                Vec3::new(0.9, 0.9, 0.92),
                0.3,
            ),
            // Buns: two elongated "blob bars" approximated by cylinders laid
            // flat (rotated shapes approximated with boxes).
            Primitive::matte(
                Shape::Box {
                    center: Vec3::new(0.0, -0.18, -0.09),
                    half: Vec3::new(0.32, 0.07, 0.08),
                },
                45.0,
                Vec3::new(0.8, 0.6, 0.3),
            ),
            Primitive::matte(
                Shape::Box {
                    center: Vec3::new(0.0, -0.18, 0.09),
                    half: Vec3::new(0.32, 0.07, 0.08),
                },
                45.0,
                Vec3::new(0.8, 0.6, 0.3),
            ),
            // Sausage.
            Primitive::glossy(
                Shape::Box {
                    center: Vec3::new(0.0, -0.1, 0.0),
                    half: Vec3::new(0.3, 0.05, 0.05),
                },
                50.0,
                Vec3::new(0.7, 0.2, 0.1),
                0.5,
            ),
        ],
    )
}

fn lego() -> AnalyticScene {
    let mut prims = Vec::new();
    let yellow = Vec3::new(0.85, 0.7, 0.1);
    // Bulldozer-ish stack of bricks.
    let bricks = [
        (Vec3::new(0.0, -0.35, 0.0), Vec3::new(0.45, 0.08, 0.3)),
        (Vec3::new(0.0, -0.18, 0.0), Vec3::new(0.35, 0.08, 0.25)),
        (Vec3::new(-0.1, 0.0, 0.0), Vec3::new(0.22, 0.1, 0.2)),
        (Vec3::new(0.05, 0.2, 0.0), Vec3::new(0.15, 0.1, 0.15)),
    ];
    for (i, &(c, h)) in bricks.iter().enumerate() {
        prims.push(Primitive::matte(
            c_shape(c, h),
            50.0,
            if i % 2 == 0 {
                yellow
            } else {
                Vec3::new(0.4, 0.4, 0.42)
            },
        ));
    }
    // Blade.
    prims.push(Primitive::glossy(
        Shape::Box {
            center: Vec3::new(0.45, -0.25, 0.0),
            half: Vec3::new(0.04, 0.15, 0.32),
        },
        55.0,
        Vec3::new(0.75, 0.75, 0.78),
        0.6,
    ));
    // Wheels.
    for sz in [-1.0f32, 1.0] {
        for x in [-0.25f32, 0.2] {
            prims.push(Primitive::matte(
                Shape::Torus {
                    center: Vec3::new(x, -0.42, 0.32 * sz),
                    major: 0.09,
                    minor: 0.04,
                },
                60.0,
                Vec3::new(0.12, 0.12, 0.12),
            ));
        }
    }
    AnalyticScene::new("lego", prims)
}

fn c_shape(center: Vec3, half: Vec3) -> Shape {
    Shape::Box { center, half }
}

fn materials() -> AnalyticScene {
    // A grid of spheres with varying gloss — the view-dependence stress test.
    let mut prims = Vec::new();
    for i in 0..3 {
        for j in 0..3 {
            let x = -0.4 + 0.4 * i as f32;
            let z = -0.4 + 0.4 * j as f32;
            let gloss = (i * 3 + j) as f32 / 8.0;
            prims.push(Primitive::glossy(
                Shape::Sphere {
                    center: Vec3::new(x, -0.2, z),
                    radius: 0.14,
                },
                50.0,
                Vec3::new(0.2 + 0.3 * i as f32 / 2.0, 0.3, 0.8 - 0.3 * j as f32 / 2.0),
                gloss,
            ));
        }
    }
    AnalyticScene::new("materials", prims)
}

fn mic() -> AnalyticScene {
    AnalyticScene::new(
        "mic",
        vec![
            // Head.
            Primitive::glossy(
                Shape::Sphere {
                    center: Vec3::new(0.0, 0.3, 0.0),
                    radius: 0.18,
                },
                45.0,
                Vec3::new(0.6, 0.6, 0.65),
                0.7,
            ),
            // Handle.
            Primitive::matte(
                Shape::Cylinder {
                    center: Vec3::new(0.0, -0.05, 0.0),
                    radius: 0.06,
                    half_height: 0.22,
                },
                50.0,
                Vec3::new(0.15, 0.15, 0.18),
            ),
            // Stand arm + base.
            Primitive::matte(
                Shape::Cylinder {
                    center: Vec3::new(0.0, -0.35, 0.0),
                    radius: 0.035,
                    half_height: 0.12,
                },
                50.0,
                Vec3::new(0.25, 0.25, 0.28),
            ),
            Primitive::matte(
                Shape::Cylinder {
                    center: Vec3::new(0.0, -0.48, 0.0),
                    radius: 0.25,
                    half_height: 0.03,
                },
                55.0,
                Vec3::new(0.2, 0.2, 0.22),
            ),
        ],
    )
}

fn ship() -> AnalyticScene {
    AnalyticScene::new(
        "ship",
        vec![
            // Water: a broad translucent slab.
            Primitive::glossy(
                Shape::Box {
                    center: Vec3::new(0.0, -0.45, 0.0),
                    half: Vec3::new(0.6, 0.05, 0.6),
                },
                12.0,
                Vec3::new(0.1, 0.3, 0.5),
                0.6,
            ),
            // Hull.
            Primitive::matte(
                Shape::Box {
                    center: Vec3::new(0.0, -0.3, 0.0),
                    half: Vec3::new(0.4, 0.1, 0.15),
                },
                45.0,
                Vec3::new(0.45, 0.28, 0.15),
            ),
            // Cabin.
            Primitive::matte(
                Shape::Box {
                    center: Vec3::new(-0.1, -0.12, 0.0),
                    half: Vec3::new(0.15, 0.08, 0.1),
                },
                45.0,
                Vec3::new(0.6, 0.5, 0.4),
            ),
            // Mast.
            Primitive::matte(
                Shape::Cylinder {
                    center: Vec3::new(0.1, 0.15, 0.0),
                    radius: 0.025,
                    half_height: 0.35,
                },
                50.0,
                Vec3::new(0.35, 0.25, 0.15),
            ),
            // Sail.
            Primitive::matte(
                Shape::Box {
                    center: Vec3::new(0.22, 0.2, 0.0),
                    half: Vec3::new(0.1, 0.22, 0.01),
                },
                35.0,
                Vec3::new(0.9, 0.88, 0.8),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant3d_nerf::field::RadianceField;

    #[test]
    fn all_eight_scenes_build() {
        let scenes = all_scenes();
        assert_eq!(scenes.len(), 8);
        for (i, s) in scenes.iter().enumerate() {
            assert_eq!(s.name(), SCENE_NAMES[i]);
            assert!(!s.primitives().is_empty());
        }
    }

    #[test]
    fn scenes_have_nonzero_density_somewhere() {
        for s in all_scenes() {
            let aabb = s.aabb();
            // Scan a coarse lattice for density.
            let mut found = false;
            let n = 12;
            'outer: for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let u = instant3d_nerf::math::Vec3::new(
                            (i as f32 + 0.5) / n as f32,
                            (j as f32 + 0.5) / n as f32,
                            (k as f32 + 0.5) / n as f32,
                        );
                        if s.density(aabb.from_unit(u)) > 0.0 {
                            found = true;
                            break 'outer;
                        }
                    }
                }
            }
            assert!(found, "scene {} appears empty", s.name());
        }
    }

    #[test]
    fn scene_extents_are_object_scale() {
        for s in all_scenes() {
            let d = s.aabb().diagonal();
            assert!(d > 0.5 && d < 4.0, "scene {} diagonal {d}", s.name());
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let _ = build_scene(8);
    }

    #[test]
    fn materials_scene_is_view_dependent() {
        let s = build_scene(5);
        // Find a dense point on a glossy sphere.
        let p = instant3d_nerf::math::Vec3::new(0.4, -0.1, 0.4);
        let d1 = instant3d_nerf::math::Vec3::new(0.0, -1.0, 0.0);
        let d2 = instant3d_nerf::math::Vec3::new(1.0, 0.0, 0.0);
        let (sig, c1) = s.query(p, d1);
        let (_, c2) = s.query(p, d2);
        assert!(sig > 0.0);
        assert_ne!(c1, c2, "glossy scene should be view dependent");
    }
}
