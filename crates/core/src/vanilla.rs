//! The vanilla-NeRF baseline (§2.1): a frequency-encoded MLP radiance
//! field, plus the training-cost model behind the paper's "353,895
//! trillion FLOPs, > 1 day on a V100" motivation.
//!
//! Vanilla NeRF replaces Step ③'s grid+small-MLP with one large MLP: the
//! position is frequency-encoded (10 octaves) and pushed through a deep
//! trunk; the view direction (4 octaves) joins for the color output. This
//! module provides a laptop-scale trainable version (the trunk is
//! configurable; the paper-scale 10×256 network is represented in the cost
//! model) so the repository can demonstrate the convergence gap that
//! motivated Instant-NGP and, in turn, Instant-3D.
//!
//! Note vanilla NeRF integrates *every* stratified sample — there is no
//! occupancy grid here by design (§2.1), which is exactly why its
//! `points_per_iter` dwarfs the grid models'. The batched occupancy
//! subsystem that keeps the grid trainers' point counts low lives in
//! `instant3d_nerf::occupancy` and is wired through [`crate::Trainer`].

use instant3d_nerf::activation::Activation;
use instant3d_nerf::adam::{Adam, AdamConfig};
use instant3d_nerf::encoding::{freq_encode_into, freq_encoding_dim};
use instant3d_nerf::field::RadianceField;
use instant3d_nerf::kernels::{self, BackendHandle};
use instant3d_nerf::math::{Aabb, Vec3};
use instant3d_nerf::mlp::{Mlp, MlpBatchWorkspace, MlpConfig, MlpGradients, MlpWorkspace};
use instant3d_nerf::render::{
    composite, composite_backward, composite_backward_slices, pixel_loss, RayBatch, RayBatchCache,
    RaySample, RenderCache,
};
use instant3d_nerf::sampler::{
    sample_pixel_batch, sample_pixel_batch_into, sample_segments, sample_segments_into, Segment,
    TrainRay,
};
use instant3d_scenes::Dataset;
use rand::Rng;

/// Configuration of the vanilla-NeRF baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct VanillaConfig {
    /// Octaves of positional frequency encoding (vanilla: 10).
    pub pos_levels: usize,
    /// Octaves of directional frequency encoding (vanilla: 4).
    pub dir_levels: usize,
    /// Hidden width (vanilla: 256).
    pub hidden_dim: usize,
    /// Hidden layers in the trunk (vanilla: 10; laptop default smaller).
    pub hidden_layers: usize,
    /// Rays per batch.
    pub rays_per_batch: usize,
    /// Samples per ray (no occupancy culling in vanilla NeRF).
    pub samples_per_ray: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Kernel backend for the batched step (same open registry dispatch —
    /// and the same bit-identity contract — as the grid engine's
    /// `TrainConfig::kernel_backend`; env override
    /// `INSTANT3D_KERNEL_BACKEND`).
    pub kernel_backend: BackendHandle,
}

impl Default for VanillaConfig {
    /// A laptop-scale trunk (4×64) that keeps iteration times comparable
    /// to the grid models while preserving vanilla NeRF's structure.
    fn default() -> Self {
        VanillaConfig {
            pos_levels: 6,
            dir_levels: 2,
            hidden_dim: 64,
            hidden_layers: 4,
            rays_per_batch: 256,
            samples_per_ray: 48,
            lr: 5e-4,
            kernel_backend: kernels::from_env_or_default(),
        }
    }
}

/// The vanilla-NeRF model: one MLP mapping
/// `[γ_pos(x) ++ γ_dir(d)] → (σ, rgb)`.
#[derive(Debug, Clone)]
pub struct VanillaNerf {
    cfg: VanillaConfig,
    aabb: Aabb,
    mlp: Mlp,
}

/// Scratch for per-point evaluation.
#[derive(Debug, Clone)]
pub struct VanillaWorkspace {
    input: Vec<f32>,
    ws: MlpWorkspace,
    d_out: [f32; 4],
}

impl VanillaNerf {
    /// Builds the model for a scene volume.
    pub fn new<R: Rng + ?Sized>(cfg: VanillaConfig, aabb: Aabb, rng: &mut R) -> Self {
        let in_dim =
            freq_encoding_dim(cfg.pos_levels, true) + freq_encoding_dim(cfg.dir_levels, false);
        let hidden: Vec<usize> = vec![cfg.hidden_dim; cfg.hidden_layers];
        // 4 outputs: raw density + rgb. Density uses TruncExp downstream;
        // keep the MLP output linear and activate per-channel ourselves.
        let mlp = Mlp::new(
            MlpConfig::new(in_dim, &hidden, 4, Activation::Relu, Activation::None),
            rng,
        );
        VanillaNerf { cfg, aabb, mlp }
    }

    /// The configuration.
    pub fn config(&self) -> &VanillaConfig {
        &self.cfg
    }

    /// Trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.mlp.num_params()
    }

    /// Multiply-accumulates per queried point (forward).
    pub fn flops_per_point(&self) -> usize {
        self.mlp.flops()
    }

    /// Allocates a workspace.
    pub fn workspace(&self) -> VanillaWorkspace {
        VanillaWorkspace {
            input: vec![0.0; self.mlp.in_dim()],
            ws: self.mlp.workspace(),
            d_out: [0.0; 4],
        }
    }

    fn encode_input(&self, pos: Vec3, dir: Vec3, input: &mut [f32]) {
        let unit = self.aabb.to_unit(pos);
        let pos_dim = freq_encoding_dim(self.cfg.pos_levels, true);
        freq_encode_into(unit, self.cfg.pos_levels, true, &mut input[..pos_dim]);
        freq_encode_into(dir, self.cfg.dir_levels, false, &mut input[pos_dim..]);
    }

    /// Forward query leaving MLP state in `ws` for a subsequent backward.
    pub fn query_ws(&self, pos: Vec3, dir: Vec3, ws: &mut VanillaWorkspace) -> (f32, Vec3) {
        self.encode_input(pos, dir, &mut ws.input);
        let out = self.mlp.forward(&ws.input, &mut ws.ws);
        let sigma = Activation::TruncExp.apply(out[0]);
        let rgb = Vec3::new(
            Activation::Sigmoid.apply(out[1]),
            Activation::Sigmoid.apply(out[2]),
            Activation::Sigmoid.apply(out[3]),
        );
        (sigma, rgb)
    }

    /// Backward for the point most recently queried on `ws`.
    pub fn backward_ws(
        &self,
        sigma: f32,
        rgb: Vec3,
        d_sigma: f32,
        d_rgb: Vec3,
        ws: &mut VanillaWorkspace,
        grads: &mut MlpGradients,
    ) {
        // Chain through the per-channel output activations.
        ws.d_out[0] = d_sigma * sigma; // d/dx TruncExp = exp (unclamped range)
        ws.d_out[1] = d_rgb.x * rgb.x * (1.0 - rgb.x);
        ws.d_out[2] = d_rgb.y * rgb.y * (1.0 - rgb.y);
        ws.d_out[3] = d_rgb.z * rgb.z * (1.0 - rgb.z);
        let d_out = ws.d_out;
        self.mlp.backward(&d_out, &mut ws.ws, grads, &mut []);
    }
}

impl RadianceField for VanillaNerf {
    fn aabb(&self) -> Aabb {
        self.aabb
    }

    fn query(&self, pos: Vec3, dir: Vec3) -> (f32, Vec3) {
        let mut ws = self.workspace();
        self.query_ws(pos, dir, &mut ws)
    }
}

/// Preallocated SoA buffers for the batched vanilla training step — the
/// vanilla-NeRF counterpart of [`crate::batch::BatchWorkspace`].
#[derive(Debug)]
pub struct VanillaBatchWorkspace {
    rays: RayBatch,
    cache: RayBatchCache,
    /// Frequency-encoded MLP input rows (`n × in_dim`).
    inputs: Vec<f32>,
    ws: MlpBatchWorkspace,
    d_sigma: Vec<f32>,
    d_rgb: Vec<Vec3>,
    /// Chained output-activation gradient rows (`n × 4`).
    d_out: Vec<f32>,
}

impl VanillaBatchWorkspace {
    fn new(model: &VanillaNerf) -> Self {
        VanillaBatchWorkspace {
            rays: RayBatch::new(),
            cache: RayBatchCache::default(),
            inputs: Vec::new(),
            ws: model.mlp.batch_workspace(0),
            d_sigma: Vec::new(),
            d_rgb: Vec::new(),
            d_out: Vec::new(),
        }
    }
}

/// A minimal trainer for the vanilla baseline (no occupancy grid, no
/// decomposition — faithful to §2.1's pipeline). The default
/// [`VanillaTrainer::step`] runs on batched SoA buffers;
/// [`VanillaTrainer::step_scalar`] keeps the point-at-a-time reference.
#[derive(Debug)]
pub struct VanillaTrainer {
    model: VanillaNerf,
    opts: Vec<Adam>,
    grads: MlpGradients,
    ws: VanillaWorkspace,
    bws: VanillaBatchWorkspace,
    ray_scratch: Vec<TrainRay>,
    seg_scratch: Vec<Segment>,
    cameras: Vec<instant3d_nerf::camera::Camera>,
    images: Vec<instant3d_nerf::image::RgbImage>,
    background: Vec3,
    iter: u64,
}

impl VanillaTrainer {
    /// Builds the trainer for a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no training views.
    pub fn new<R: Rng + ?Sized>(cfg: VanillaConfig, dataset: &Dataset, rng: &mut R) -> Self {
        assert!(
            !dataset.train_views.is_empty(),
            "dataset has no training views"
        );
        let model = VanillaNerf::new(cfg.clone(), dataset.aabb, rng);
        let adam = AdamConfig {
            lr: cfg.lr,
            ..AdamConfig::for_mlp()
        };
        let opts = model
            .mlp
            .layers()
            .iter()
            .flat_map(|l| {
                let s = l.spec();
                [s.in_dim * s.out_dim, s.out_dim]
            })
            .map(|n| Adam::new(adam, n))
            .collect();
        let grads = model.mlp.zero_grads();
        let ws = model.workspace();
        let bws = VanillaBatchWorkspace::new(&model);
        VanillaTrainer {
            model,
            opts,
            grads,
            ws,
            bws,
            ray_scratch: Vec::new(),
            seg_scratch: Vec::new(),
            cameras: dataset.train_cameras(),
            images: dataset.train_images(),
            background: dataset.background,
            iter: 0,
        }
    }

    /// The model under training.
    pub fn model(&self) -> &VanillaNerf {
        &self.model
    }

    /// Iterations executed.
    pub fn iteration(&self) -> u64 {
        self.iter
    }

    /// One batched training iteration; returns the batch loss.
    ///
    /// Gathers all ray samples into SoA buffers, frequency-encodes them in
    /// one sweep, runs a single batched MLP forward/backward (no per-point
    /// re-forward), and composites per ray. RNG consumption and per-point
    /// arithmetic match [`VanillaTrainer::step_scalar`], so the two paths
    /// produce identical losses and parameters.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f32 {
        let cfg = self.model.cfg.clone();
        sample_pixel_batch_into(
            &self.cameras,
            &self.images,
            cfg.rays_per_batch,
            rng,
            &mut self.ray_scratch,
        );
        self.grads.zero();
        let aabb = self.model.aabb;
        let bws = &mut self.bws;
        bws.rays.clear();
        // Sampling (identical RNG order to the scalar path).
        for tr in &self.ray_scratch {
            sample_segments_into(
                &tr.ray,
                &aabb,
                cfg.samples_per_ray,
                Some(rng),
                &mut self.seg_scratch,
            );
            for &(t, dt) in &self.seg_scratch {
                bws.rays.push_sample(t, dt);
            }
            bws.rays.end_ray();
        }
        let n = bws.rays.num_samples();
        let in_dim = self.model.mlp.in_dim();

        // Frequency-encode every sample into the flat input rows.
        bws.inputs.resize(n * in_dim, 0.0);
        {
            let mut k = 0usize;
            for (r, tr) in self.ray_scratch.iter().enumerate() {
                for s in bws.rays.ray_range(r) {
                    let pos = tr.ray.at(bws.rays.t[s]);
                    self.model.encode_input(
                        pos,
                        tr.ray.dir,
                        &mut bws.inputs[k * in_dim..(k + 1) * in_dim],
                    );
                    k += 1;
                }
            }
            debug_assert_eq!(k, n);
        }

        // One batched MLP forward, then per-channel output activations
        // written straight into the ray batch.
        let out = self
            .model
            .mlp
            .forward_batch_with(&cfg.kernel_backend, &bws.inputs, &mut bws.ws);
        for i in 0..n {
            let row = &out[i * 4..(i + 1) * 4];
            bws.rays.sigma[i] = Activation::TruncExp.apply(row[0]);
            bws.rays.rgb[i] = Vec3::new(
                Activation::Sigmoid.apply(row[1]),
                Activation::Sigmoid.apply(row[2]),
                Activation::Sigmoid.apply(row[3]),
            );
        }

        // Composite + loss + render backward, per ray over SoA slices.
        // (Only the per-sample cache arrays are needed — per-ray outputs
        // are consumed immediately in the loss loop below.)
        bws.cache.weights.resize(n, 0.0);
        bws.cache.trans.resize(n, 0.0);
        bws.cache.one_minus_alpha.resize(n, 0.0);
        bws.d_sigma.resize(n, 0.0);
        bws.d_rgb.resize(n, Vec3::ZERO);
        let inv = 1.0 / self.ray_scratch.len().max(1) as f32;
        let mut total_loss = 0.0;
        for (r, tr) in self.ray_scratch.iter().enumerate() {
            let range = bws.rays.ray_range(r);
            let (out, active) = instant3d_nerf::render::composite_slices_with(
                &cfg.kernel_backend,
                &bws.rays.t[range.clone()],
                &bws.rays.dt[range.clone()],
                &bws.rays.sigma[range.clone()],
                &bws.rays.rgb[range.clone()],
                self.background,
                Some((
                    &mut bws.cache.weights[range.clone()],
                    &mut bws.cache.trans[range.clone()],
                    &mut bws.cache.one_minus_alpha[range.clone()],
                )),
            );
            let (loss, d_color) = pixel_loss(out.color, tr.target);
            total_loss += loss;
            composite_backward_slices(
                &bws.rays.dt[range.clone()],
                &bws.rays.rgb[range.clone()],
                self.background,
                &bws.cache.weights[range.clone()],
                &bws.cache.trans[range.clone()],
                &bws.cache.one_minus_alpha[range.clone()],
                active,
                &out,
                d_color * inv,
                &mut bws.d_sigma[range.clone()],
                &mut bws.d_rgb[range],
            );
        }

        // Chain through the per-channel output activations, then one
        // batched MLP backward over the retained activations.
        bws.d_out.resize(n * 4, 0.0);
        for i in 0..n {
            let row = &mut bws.d_out[i * 4..(i + 1) * 4];
            let (s, c) = (bws.rays.sigma[i], bws.rays.rgb[i]);
            row[0] = bws.d_sigma[i] * s; // d/dx TruncExp = exp (unclamped range)
            row[1] = bws.d_rgb[i].x * c.x * (1.0 - c.x);
            row[2] = bws.d_rgb[i].y * c.y * (1.0 - c.y);
            row[3] = bws.d_rgb[i].z * c.z * (1.0 - c.z);
        }
        self.model.mlp.backward_batch_with(
            &cfg.kernel_backend,
            &bws.d_out,
            &mut bws.ws,
            &mut self.grads,
            &mut [],
        );

        let mut idx = 0;
        let opts = &mut self.opts;
        self.model
            .mlp
            .for_each_param_mut(&self.grads, |params, grads| {
                opts[idx].step(params, grads);
                idx += 1;
            });
        self.iter += 1;
        total_loss * inv
    }

    /// One scalar (point-at-a-time) training iteration — the reference
    /// implementation the batched [`VanillaTrainer::step`] is gated
    /// against; returns the batch loss.
    pub fn step_scalar<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f32 {
        let cfg = self.model.cfg.clone();
        let batch = sample_pixel_batch(&self.cameras, &self.images, cfg.rays_per_batch, rng);
        self.grads.zero();
        let mut cache = RenderCache::default();
        let mut samples: Vec<RaySample> = Vec::with_capacity(cfg.samples_per_ray);
        let mut outs: Vec<(f32, Vec3)> = Vec::with_capacity(cfg.samples_per_ray);
        let mut total_loss = 0.0;
        let inv = 1.0 / batch.len().max(1) as f32;
        for tr in &batch {
            let segs = sample_segments(&tr.ray, &self.model.aabb, cfg.samples_per_ray, Some(rng));
            samples.clear();
            outs.clear();
            for &(t, dt) in &segs {
                let (sigma, rgb) = self.model.query_ws(tr.ray.at(t), tr.ray.dir, &mut self.ws);
                samples.push(RaySample { t, dt, sigma, rgb });
                outs.push((sigma, rgb));
            }
            let out = composite(&samples, self.background, Some(&mut cache));
            let (loss, d_color) = pixel_loss(out.color, tr.target);
            total_loss += loss;
            let sg = composite_backward(&samples, self.background, &cache, &out, d_color * inv);
            for (k, &(t, _)) in segs.iter().enumerate().take(samples.len()) {
                // Re-forward to restore MLP state, then backward.
                let (sigma, rgb) = self.model.query_ws(tr.ray.at(t), tr.ray.dir, &mut self.ws);
                debug_assert_eq!(outs[k].0, sigma);
                self.model.backward_ws(
                    sigma,
                    rgb,
                    sg.d_sigma[k],
                    sg.d_rgb[k],
                    &mut self.ws,
                    &mut self.grads,
                );
            }
        }
        let mut idx = 0;
        let opts = &mut self.opts;
        self.model
            .mlp
            .for_each_param_mut(&self.grads, |params, grads| {
                opts[idx].step(params, grads);
                idx += 1;
            });
        self.iter += 1;
        total_loss * inv
    }
}

/// The §2.1 training-cost model of paper-scale vanilla NeRF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VanillaCostModel {
    /// Training iterations per scene ("around 150,000").
    pub iterations: f64,
    /// Points per iteration ("batch size of 786,432 = 192 points/pixel ×
    /// 4,096 pixels").
    pub points_per_iter: f64,
    /// MLP FLOPs per point ("an MLP model of 1 million FLOPs").
    pub flops_per_point: f64,
    /// Backward-pass multiplier on forward FLOPs (forward + backward ≈ 3×).
    pub backward_factor: f64,
}

impl Default for VanillaCostModel {
    fn default() -> Self {
        VanillaCostModel {
            iterations: 150_000.0,
            points_per_iter: 786_432.0,
            flops_per_point: 1e6,
            backward_factor: 3.0,
        }
    }
}

impl VanillaCostModel {
    /// Total training FLOPs (paper: "353,895 trillion FLOPs").
    pub fn total_flops(&self) -> f64 {
        self.iterations * self.points_per_iter * self.flops_per_point * self.backward_factor
    }

    /// Training days on a GPU with `peak_flops` at `efficiency` (paper:
    /// "> 1 day of training time on one V100").
    pub fn days_on(&self, peak_flops: f64, efficiency: f64) -> f64 {
        self.total_flops() / (peak_flops * efficiency) / 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant3d_scenes::SceneLibrary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> VanillaConfig {
        VanillaConfig {
            pos_levels: 4,
            dir_levels: 2,
            hidden_dim: 32,
            hidden_layers: 2,
            rays_per_batch: 48,
            samples_per_ray: 24,
            lr: 1e-3,
            ..VanillaConfig::default()
        }
    }

    #[test]
    fn cost_model_reproduces_section_21_numbers() {
        let c = VanillaCostModel::default();
        // "353,895 trillion FLOPs".
        let trillions = c.total_flops() / 1e12;
        assert!(
            (trillions - 353_895.0).abs() / 353_895.0 < 0.01,
            "total {trillions:.0} trillion FLOPs"
        );
        // "> 1 day on one V100" (15.7 TFLOPS fp32 at ~25% utilisation).
        let days = c.days_on(15.7e12, 0.25);
        assert!(days > 1.0, "{days:.2} days should exceed 1");
    }

    #[test]
    fn forward_outputs_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = VanillaNerf::new(small_cfg(), Aabb::UNIT, &mut rng);
        let (sigma, rgb) = m.query(Vec3::splat(0.5), Vec3::Z);
        assert!(sigma >= 0.0 && sigma.is_finite());
        for k in 0..3 {
            assert!((0.0..=1.0).contains(&rgb[k]));
        }
        assert!(m.num_params() > 0);
        assert!(m.flops_per_point() > 0);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = VanillaNerf::new(small_cfg(), Aabb::UNIT, &mut rng);
        let pos = Vec3::new(0.3, 0.7, 0.4);
        let dir = Vec3::new(0.0, 0.6, 0.8);
        let (d_sigma, d_rgb) = (0.5f32, Vec3::new(1.0, -0.5, 0.25));
        let mut ws = m.workspace();
        let mut grads = m.mlp.zero_grads();
        let (s, c) = m.query_ws(pos, dir, &mut ws);
        m.backward_ws(s, c, d_sigma, d_rgb, &mut ws, &mut grads);

        let loss = |m: &VanillaNerf| {
            let (s, c) = m.query(pos, dir);
            d_sigma * s + d_rgb.dot(c)
        };
        let eps = 1e-3;
        // Probe a few weights of the first layer via the param visitor.
        let analytic = grads.layers[0].0[3];
        {
            let mut probe = |delta: f32| -> f32 {
                let g0 = m.mlp.zero_grads();
                let mut val = 0.0;
                let mut idx = 0;
                m.mlp.for_each_param_mut(&g0, |params, _| {
                    if idx == 0 {
                        params[3] += delta;
                        val = params[3];
                    }
                    idx += 1;
                });
                let _ = val;
                loss(&m)
            };
            let lp = probe(eps);
            let lm = probe(-2.0 * eps);
            probe(eps); // restore
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                "fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = SceneLibrary::synthetic_scene(0, 12, 3, &mut rng);
        let mut t = VanillaTrainer::new(small_cfg(), &ds, &mut rng);
        let first: f32 = (0..3).map(|_| t.step(&mut rng)).sum::<f32>() / 3.0;
        for _ in 0..40 {
            t.step(&mut rng);
        }
        let last: f32 = (0..3).map(|_| t.step(&mut rng)).sum::<f32>() / 3.0;
        assert!(last < first, "loss should decrease: {first} -> {last}");
        assert_eq!(t.iteration(), 46);
    }

    #[test]
    fn batched_step_matches_scalar_reference() {
        // Same RNG consumption and per-point arithmetic → identical
        // losses and identical parameters, step for step. Bit-equality
        // with the scalar reference only holds for strict-tier backends,
        // so a lossy `INSTANT3D_KERNEL_BACKEND` override falls back to
        // the default here (lossy backends are gated by the tolerance
        // suite instead).
        let strict_cfg = VanillaConfig {
            kernel_backend: kernels::strict_from_env_or_default(),
            ..small_cfg()
        };
        let ds = SceneLibrary::synthetic_scene(0, 12, 3, &mut StdRng::seed_from_u64(1));
        let mut batched =
            VanillaTrainer::new(strict_cfg.clone(), &ds, &mut StdRng::seed_from_u64(2));
        let mut scalar = VanillaTrainer::new(strict_cfg, &ds, &mut StdRng::seed_from_u64(2));
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        for i in 0..4 {
            let lb = batched.step(&mut rng_a);
            let ls = scalar.step_scalar(&mut rng_b);
            assert_eq!(lb, ls, "step {i}: batched vs scalar loss");
        }
        let probe = Vec3::new(0.4, 0.3, 0.6);
        let (sb, cb) = batched.model().query(probe, Vec3::Z);
        let (ss, cs) = scalar.model().query(probe, Vec3::Z);
        assert_eq!(sb, ss);
        assert_eq!(cb, cs);
    }
}
