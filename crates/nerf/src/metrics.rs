//! Image quality metrics: PSNR (the paper's reconstruction-quality measure)
//! and helpers for color and depth comparisons.

use crate::image::{DepthImage, RgbImage};

/// Peak signal-to-noise ratio in dB for a given MSE and peak value.
///
/// Returns `f32::INFINITY` for zero MSE (identical images).
///
/// # Panics
///
/// Panics if `mse < 0` or `peak <= 0`.
///
/// # Example
///
/// ```
/// use instant3d_nerf::metrics::psnr;
/// assert_eq!(psnr(0.01, 1.0), 20.0);
/// ```
pub fn psnr(mse: f32, peak: f32) -> f32 {
    assert!(mse >= 0.0, "mse must be non-negative");
    assert!(peak > 0.0, "peak must be positive");
    if mse == 0.0 {
        return f32::INFINITY;
    }
    10.0 * ((peak * peak / mse) as f64).log10() as f32
}

/// PSNR between two RGB images on a [0, 1] scale.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn psnr_rgb(a: &RgbImage, b: &RgbImage) -> f32 {
    psnr(a.mse(b), 1.0)
}

/// PSNR between two depth images, normalised by their shared max depth —
/// how the paper scores the "depth image" quality of the density branch
/// (Fig. 5).
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn psnr_depth(a: &DepthImage, b: &DepthImage) -> f32 {
    let scale = a.max_depth().max(b.max_depth()).max(1e-6);
    psnr(a.mse_normalized(b, scale), 1.0)
}

/// Mean of a slice (convenience for averaging per-scene PSNRs).
///
/// Returns `None` for an empty slice.
pub fn mean(values: &[f32]) -> Option<f32> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f32>() / values.len() as f32)
}

/// Sample standard deviation; `None` for fewer than two values.
pub fn std_dev(values: &[f32]) -> Option<f32> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / (values.len() - 1) as f32;
    Some(var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Vec3;

    #[test]
    fn psnr_reference_points() {
        assert_eq!(psnr(1.0, 1.0), 0.0);
        assert_eq!(psnr(0.01, 1.0), 20.0);
        assert!((psnr(0.001, 1.0) - 30.0).abs() < 1e-4);
        assert_eq!(psnr(0.0, 1.0), f32::INFINITY);
    }

    #[test]
    fn psnr_scales_with_peak() {
        // Doubling the peak adds ~6.02 dB.
        let d = psnr(0.01, 2.0) - psnr(0.01, 1.0);
        assert!((d - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn identical_rgb_images_have_infinite_psnr() {
        let img = RgbImage::from_fn(8, 8, |x, y| Vec3::splat((x * y) as f32 / 64.0));
        assert_eq!(psnr_rgb(&img, &img), f32::INFINITY);
    }

    #[test]
    fn noisier_image_has_lower_psnr() {
        let truth = RgbImage::from_fn(16, 16, |x, _| Vec3::splat(x as f32 / 16.0));
        let mut small_noise = truth.clone();
        let mut big_noise = truth.clone();
        for (i, p) in small_noise.pixels_mut().iter_mut().enumerate() {
            *p += Vec3::splat(if i % 2 == 0 { 0.01 } else { -0.01 });
        }
        for (i, p) in big_noise.pixels_mut().iter_mut().enumerate() {
            *p += Vec3::splat(if i % 2 == 0 { 0.1 } else { -0.1 });
        }
        assert!(psnr_rgb(&truth, &small_noise) > psnr_rgb(&truth, &big_noise));
    }

    #[test]
    fn depth_psnr_is_scale_invariant() {
        let mut a1 = DepthImage::new(4, 4);
        let mut b1 = DepthImage::new(4, 4);
        let mut a2 = DepthImage::new(4, 4);
        let mut b2 = DepthImage::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                let d = (x + y) as f32;
                a1.set(x, y, d);
                b1.set(x, y, d + 0.5);
                a2.set(x, y, d * 10.0);
                b2.set(x, y, (d + 0.5) * 10.0);
            }
        }
        let p1 = psnr_depth(&a1, &b1);
        let p2 = psnr_depth(&a2, &b2);
        assert!((p1 - p2).abs() < 1e-4, "{p1} vs {p2}");
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0]), None);
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.138).abs() < 1e-2);
    }

    #[test]
    #[should_panic]
    fn negative_mse_panics() {
        let _ = psnr(-1.0, 1.0);
    }

    // Knife-edge pins for the lossy-tier tolerance gate: PSNR drops are
    // compared to 0.05 dB, so the metric must behave exactly on the
    // degenerate images the gate can produce.

    #[test]
    fn signed_zero_pixels_are_identical_for_psnr() {
        // +0.0 and −0.0 differ in bits but not in value: the squared
        // error is exactly zero, so the PSNR is infinite, not NaN.
        let pos = RgbImage::from_fn(4, 4, |_, _| Vec3::splat(0.0));
        let neg = RgbImage::from_fn(4, 4, |_, _| Vec3::splat(-0.0));
        assert_eq!(psnr_rgb(&pos, &neg), f32::INFINITY);
    }

    #[test]
    fn one_pixel_image_psnr_matches_closed_form() {
        // A 1×1 pair pins the mse normalisation: one channel triple off
        // by 0.5 → MSE 0.25 → 10·log10(1/0.25) ≈ 6.0206 dB.
        let a = RgbImage::from_fn(1, 1, |_, _| Vec3::splat(0.25));
        let b = RgbImage::from_fn(1, 1, |_, _| Vec3::splat(0.75));
        let p = psnr_rgb(&a, &b);
        assert!((p - 6.0206).abs() < 1e-3, "1×1 psnr {p}");
    }

    #[test]
    fn constant_images_psnr_matches_closed_form() {
        // Constant-vs-constant is pure mean offset: MSE = d².
        let a = RgbImage::from_fn(8, 8, |_, _| Vec3::splat(0.2));
        let b = RgbImage::from_fn(8, 8, |_, _| Vec3::splat(0.3));
        let p = psnr_rgb(&a, &b);
        let expect = psnr(0.1f32 * 0.1, 1.0);
        assert!((p - expect).abs() < 1e-3, "{p} vs {expect}");
    }

    #[test]
    fn zero_depth_images_use_the_scale_floor() {
        // Two all-zero depth maps: max depth is 0, the 1e-6 floor keeps
        // the normalisation finite and the PSNR infinite.
        let a = DepthImage::new(3, 3);
        let b = DepthImage::new(3, 3);
        assert_eq!(psnr_depth(&a, &b), f32::INFINITY);
    }
}
