//! The multiresolution hash-grid embedding of Instant-NGP (Step ③-①).
//!
//! A [`HashGrid`] is a stack of `L` levels; level `l` overlays the unit cube
//! with a virtual grid of resolution `N_l` and stores per-vertex feature
//! vectors (`F` floats each) in a 1D table. Coarse levels whose full vertex
//! set fits the table are stored densely (collision-free); fine levels use
//! the spatial hash of Eq. 3 ([`crate::hash::spatial_hash`]).
//!
//! Querying a 3D point trilinearly interpolates the 8 surrounding vertex
//! features at every level and concatenates the per-level results — this is
//! the operation the paper identifies as >80 % of NeRF training time, and
//! the access stream the Instant-3D accelerator (FRM/BUM units) optimises.
//!
//! The backward pass scatters the upstream embedding gradient back onto the
//! same 8 vertices per level with the same trilinear weights.
//!
//! An optional [`GridAccessObserver`] receives every table read and gradient
//! write, which is how the `instant3d-trace` crate captures the address
//! streams behind Figs. 8, 9 and 10.

use crate::adam::Adam;
use crate::fp16;
use crate::hash::{spatial_hash, vertex_address, AddressMode, CORNER_OFFSETS};
use crate::kernels::BackendHandle;
use crate::math::Vec3;
use crate::simd::F32x8;
use rand::Rng;

/// Memory-access phase, used by observers and the accelerator simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPhase {
    /// Feed-forward embedding read (Step ③-① forward).
    FeedForward,
    /// Back-propagation gradient update (Step ③-① backward).
    BackProp,
}

/// Receives every hash-table access the grid performs.
///
/// Implementations must be cheap: the grid calls the observer once per
/// corner per level per queried point.
pub trait GridAccessObserver {
    /// A table access at `level`, in-level entry index `addr`, during `phase`.
    /// `corner` is the 0..8 corner id within the interpolation cube.
    fn on_access(&mut self, phase: AccessPhase, level: u32, corner: u8, addr: u32);
}

/// A no-op observer (useful default for tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl GridAccessObserver for NullObserver {
    #[inline]
    fn on_access(&mut self, _: AccessPhase, _: u32, _: u8, _: u32) {}
}

/// Identifies which grid of a decomposed model an access refers to.
///
/// Instant-3D (§3) splits the embedding grid into a density grid and a
/// color grid; the accelerator stores them in separate SRAM regions, so
/// trace capture and simulation need the tag. Coupled (Instant-NGP) models
/// only ever report [`GridBranch::Density`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GridBranch {
    /// The density grid (or the single shared grid when coupled).
    Density,
    /// The color grid (decoupled topology only).
    Color,
}

/// An access observer that also learns which branch is being accessed.
pub trait BranchObserver {
    /// Called once per table access, tagged with the branch.
    fn on_branch_access(
        &mut self,
        branch: GridBranch,
        phase: AccessPhase,
        level: u32,
        corner: u8,
        addr: u32,
    );

    /// Whether this observer actually consumes accesses. The batched
    /// training engine checks this to pick between the sequential observed
    /// grid kernels (identical capture order to the scalar path) and the
    /// parallel unobserved ones; numeric results are identical either way.
    #[inline]
    fn wants_accesses(&self) -> bool {
        true
    }
}

/// No-op branch observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullBranchObserver;

impl BranchObserver for NullBranchObserver {
    #[inline]
    fn on_branch_access(&mut self, _: GridBranch, _: AccessPhase, _: u32, _: u8, _: u32) {}

    #[inline]
    fn wants_accesses(&self) -> bool {
        false
    }
}

/// Configuration of a multiresolution hash grid.
#[derive(Debug, Clone, PartialEq)]
pub struct HashGridConfig {
    /// Number of resolution levels `L`.
    pub levels: usize,
    /// Features per table entry `F` (the paper and Instant-NGP use 2).
    pub features_per_entry: usize,
    /// log2 of the per-level hash-table size `T`.
    pub log2_table_size: u32,
    /// Coarsest virtual grid resolution `N_min`.
    pub base_resolution: u32,
    /// Finest virtual grid resolution `N_max`.
    pub max_resolution: u32,
    /// Store features quantised to fp16 (the accelerator's storage format).
    pub store_fp16: bool,
    /// Uniform init scale: features start in `[-init_scale, init_scale]`.
    pub init_scale: f32,
}

impl Default for HashGridConfig {
    /// A laptop-scale default (the paper-scale tables are selected by the
    /// experiment configs): 8 levels, 2 features, 2^14-entry tables,
    /// resolutions 16 → 256.
    fn default() -> Self {
        HashGridConfig {
            levels: 8,
            features_per_entry: 2,
            log2_table_size: 14,
            base_resolution: 16,
            max_resolution: 256,
            store_fp16: true,
            init_scale: 1e-4,
        }
    }
}

impl HashGridConfig {
    /// The Instant-NGP paper-scale configuration: 16 levels, `T = 2^19`.
    pub fn instant_ngp() -> Self {
        HashGridConfig {
            levels: 16,
            features_per_entry: 2,
            log2_table_size: 19,
            base_resolution: 16,
            max_resolution: 512,
            store_fp16: true,
            init_scale: 1e-4,
        }
    }

    /// Returns a copy whose per-level table size is scaled by `factor`
    /// (e.g. 0.25 for the Instant-3D color grid at `S_D : S_C = 1 : 0.25`).
    ///
    /// The scale is applied in log2 space, so `factor` must be a power of
    /// two; other values are rounded to the nearest power of two.
    pub fn with_size_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "size factor must be positive");
        let delta = factor.log2().round() as i64;
        let new = self.log2_table_size as i64 + delta;
        self.log2_table_size = new.clamp(4, 30) as u32;
        self
    }

    /// Per-level virtual grid resolutions `N_l = ⌊N_min · b^l⌋` with
    /// `b = exp((ln N_max − ln N_min)/(L−1))` (Instant-NGP Eq. 2-3).
    pub fn level_resolutions(&self) -> Vec<u32> {
        assert!(self.levels >= 1);
        if self.levels == 1 {
            return vec![self.base_resolution];
        }
        let b = ((self.max_resolution as f64).ln() - (self.base_resolution as f64).ln())
            / (self.levels as f64 - 1.0);
        (0..self.levels)
            .map(|l| ((self.base_resolution as f64) * (b * l as f64).exp() + 1e-6).floor() as u32)
            .collect()
    }

    /// Hash-table entries per level (`T`).
    pub fn table_size(&self) -> u32 {
        1u32 << self.log2_table_size
    }

    /// Total number of stored feature scalars across all levels.
    pub fn num_params(&self) -> usize {
        let res = self.level_resolutions();
        res.iter()
            .map(|&r| {
                let dense = ((r + 1) as u64).pow(3);
                let t = dense.min(self.table_size() as u64) as usize;
                t * self.features_per_entry
            })
            .sum()
    }

    /// Total table bytes if stored as fp16 (what the accelerator's SRAM holds).
    pub fn table_bytes_fp16(&self) -> usize {
        self.num_params() * 2
    }
}

/// One resolution level of the grid.
#[derive(Debug, Clone)]
pub struct GridLevel {
    /// Virtual grid resolution `N_l` (cells per axis).
    pub resolution: u32,
    /// Entries in this level's table.
    pub table_size: u32,
    /// Dense or hashed addressing.
    pub mode: AddressMode,
    /// Offset (in entries) of this level within the concatenated table.
    pub entry_offset: u32,
}

/// The multiresolution hash grid: feature storage plus interpolation.
///
/// # Example
///
/// ```
/// use instant3d_nerf::grid::{HashGrid, HashGridConfig};
/// use instant3d_nerf::math::Vec3;
///
/// let cfg = HashGridConfig { levels: 4, ..HashGridConfig::default() };
/// let grid = HashGrid::new(cfg);
/// assert_eq!(grid.output_dim(), 4 * 2);
/// let emb = grid.encode(Vec3::splat(0.5));
/// assert!(emb.iter().all(|v| v.is_finite()));
/// ```
#[derive(Debug, Clone)]
pub struct HashGrid {
    cfg: HashGridConfig,
    levels: Vec<GridLevel>,
    /// All feature scalars, level-major: level l occupies
    /// `params[offset_l .. offset_l + table_size_l * F]`.
    params: Vec<f32>,
    param_offsets: Vec<usize>,
    /// Per-level parameter versions: `level_versions[l]` changes whenever
    /// level `l`'s features may have changed. Consumers (the occupancy
    /// subsystem's embedding cache) compare versions to skip re-encoding
    /// levels whose parameters are unchanged.
    level_versions: Vec<u64>,
    /// Monotone clock backing [`HashGrid::level_versions`].
    version_clock: u64,
}

impl HashGrid {
    /// Creates a grid with all features initialised to zero.
    ///
    /// Use [`HashGrid::init_random`] (or [`HashGrid::new_random`]) before
    /// training: Instant-NGP initialises features uniformly in `±1e-4`.
    pub fn new(cfg: HashGridConfig) -> Self {
        assert!(cfg.levels >= 1, "need at least one level");
        assert!(cfg.features_per_entry >= 1, "need at least one feature");
        assert!(
            cfg.base_resolution >= 1 && cfg.max_resolution >= cfg.base_resolution,
            "resolutions must satisfy 1 <= base <= max"
        );
        let resolutions = cfg.level_resolutions();
        let mut levels = Vec::with_capacity(cfg.levels);
        let mut param_offsets = Vec::with_capacity(cfg.levels + 1);
        let mut entry_cursor = 0u32;
        let mut param_cursor = 0usize;
        for &r in &resolutions {
            let dense = ((r + 1) as u64).pow(3);
            let (mode, table_size) = if dense <= cfg.table_size() as u64 {
                (AddressMode::Dense, dense as u32)
            } else {
                (AddressMode::Hashed, cfg.table_size())
            };
            levels.push(GridLevel {
                resolution: r,
                table_size,
                mode,
                entry_offset: entry_cursor,
            });
            param_offsets.push(param_cursor);
            entry_cursor += table_size;
            param_cursor += table_size as usize * cfg.features_per_entry;
        }
        param_offsets.push(param_cursor);
        let num_levels = levels.len();
        HashGrid {
            cfg,
            levels,
            params: vec![0.0; param_cursor],
            param_offsets,
            level_versions: vec![0; num_levels],
            version_clock: 0,
        }
    }

    /// Creates a grid with features drawn uniformly from `±init_scale`.
    pub fn new_random<R: Rng + ?Sized>(cfg: HashGridConfig, rng: &mut R) -> Self {
        let mut g = HashGrid::new(cfg);
        g.init_random(rng);
        g
    }

    /// Re-initialises all features uniformly in `±init_scale`, quantising to
    /// fp16 when the config requests fp16 storage.
    pub fn init_random<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let s = self.cfg.init_scale;
        for p in &mut self.params {
            *p = rng.gen_range(-s..=s);
        }
        if self.cfg.store_fp16 {
            fp16::quantize_slice(&mut self.params);
        }
        self.bump_all_levels();
    }

    /// The grid configuration.
    pub fn config(&self) -> &HashGridConfig {
        &self.cfg
    }

    /// Per-level metadata.
    pub fn levels(&self) -> &[GridLevel] {
        &self.levels
    }

    /// Embedding width produced by [`HashGrid::encode`]: `L × F`.
    pub fn output_dim(&self) -> usize {
        self.cfg.levels * self.cfg.features_per_entry
    }

    /// Total trainable scalars.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Read-only view of all parameters (level-major).
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable view of all parameters (for the optimizer).
    ///
    /// Any level may be written through this view, so it conservatively
    /// bumps every level version; the optimizer hot path uses
    /// [`HashGrid::apply_sparse_step`], which bumps only the levels a step
    /// actually touched.
    pub fn params_mut(&mut self) -> &mut [f32] {
        self.bump_all_levels();
        &mut self.params
    }

    /// Quantises all parameters to fp16 storage (call after optimizer steps
    /// when `store_fp16` is set).
    pub fn quantize_storage(&mut self) {
        if self.cfg.store_fp16 {
            fp16::quantize_slice(&mut self.params);
            self.bump_all_levels();
        }
    }

    /// Per-level parameter version counters. A consumer caching derived
    /// data (the occupancy subsystem's cell→embedding cache) records the
    /// version it computed against and recomputes only levels whose
    /// version has moved on since. Versions move monotonically; they never
    /// repeat, so `u64::MAX` is a safe "never cached" sentinel.
    pub fn level_versions(&self) -> &[u64] {
        &self.level_versions
    }

    /// Applies one sparse Adam step to the listed parameter indices,
    /// re-quantises fp16 storage, and bumps the version of exactly the
    /// levels containing a touched index — the precise invalidation path
    /// the trainer uses (in contrast to [`HashGrid::params_mut`]'s
    /// conservative all-levels bump). A no-op when `touched` is empty.
    ///
    /// fp16 re-quantisation is idempotent on already-quantised values, so
    /// untouched levels' features are bit-unchanged and their cached
    /// embeddings stay valid.
    ///
    /// # Panics
    ///
    /// Panics if `grad_values` doesn't match the parameter count, if any
    /// index is out of range, or (debug builds) if `touched` is not
    /// strictly ascending.
    pub fn apply_sparse_step(&mut self, opt: &mut Adam, grad_values: &[f32], touched: &[usize]) {
        if touched.is_empty() {
            return;
        }
        debug_assert!(
            touched.windows(2).all(|w| w[0] < w[1]),
            "touched indices must be strictly ascending"
        );
        opt.step_sparse(&mut self.params, grad_values, touched);
        if self.cfg.store_fp16 {
            fp16::quantize_slice(&mut self.params);
        }
        self.bump_levels_touching(touched);
    }

    /// Bumps every level's version (conservative invalidation).
    fn bump_all_levels(&mut self) {
        self.version_clock += 1;
        let v = self.version_clock;
        self.level_versions.fill(v);
    }

    /// Bumps the versions of the levels containing the (strictly
    /// ascending) touched parameter indices.
    fn bump_levels_touching(&mut self, touched: &[usize]) {
        self.version_clock += 1;
        let v = self.version_clock;
        let mut l = 0usize;
        for &i in touched {
            debug_assert!(i < self.params.len(), "touched index out of range");
            while i >= self.param_offsets[l + 1] {
                l += 1;
            }
            self.level_versions[l] = v;
        }
    }

    /// Offset (in entries, across the concatenated table) of `level`.
    pub fn entry_offset(&self, level: usize) -> u32 {
        self.levels[level].entry_offset
    }

    /// Interpolation data for one point at one level: the 8 corner
    /// addresses and trilinear weights.
    #[inline]
    fn corners(&self, level: &GridLevel, unit_pos: Vec3) -> ([u32; 8], [f32; 8]) {
        let n = level.resolution as f32;
        // Clamp strictly inside so `floor` stays below `resolution`.
        let eps = 1e-6;
        let sx = (unit_pos.x.clamp(0.0, 1.0 - eps)) * n;
        let sy = (unit_pos.y.clamp(0.0, 1.0 - eps)) * n;
        let sz = (unit_pos.z.clamp(0.0, 1.0 - eps)) * n;
        let (cx, cy, cz) = (sx.floor(), sy.floor(), sz.floor());
        let (fx, fy, fz) = (sx - cx, sy - cy, sz - cz);
        let (ix, iy, iz) = (cx as u32, cy as u32, cz as u32);

        let mut addrs = [0u32; 8];
        let mut weights = [0f32; 8];
        for (c, &(dx, dy, dz)) in CORNER_OFFSETS.iter().enumerate() {
            let wx = if dx == 1 { fx } else { 1.0 - fx };
            let wy = if dy == 1 { fy } else { 1.0 - fy };
            let wz = if dz == 1 { fz } else { 1.0 - fz };
            weights[c] = wx * wy * wz;
            addrs[c] = vertex_address(
                level.mode,
                ix + dx,
                iy + dy,
                iz + dz,
                level.resolution,
                level.table_size,
            );
        }
        (addrs, weights)
    }

    /// Encodes a point in the unit cube into its `L × F` embedding.
    ///
    /// Positions outside `[0,1]^3` are clamped (the trainer maps world
    /// coordinates through the scene AABB first).
    pub fn encode(&self, unit_pos: Vec3) -> Vec<f32> {
        let mut out = vec![0.0; self.output_dim()];
        self.encode_into(unit_pos, &mut out, &mut NullObserver);
        out
    }

    /// Encodes into a caller-provided buffer, reporting table reads to `obs`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.output_dim()`.
    pub fn encode_into<O: GridAccessObserver + ?Sized>(
        &self,
        unit_pos: Vec3,
        out: &mut [f32],
        obs: &mut O,
    ) {
        assert_eq!(out.len(), self.output_dim(), "output buffer size mismatch");
        let f = self.cfg.features_per_entry;
        for (l, level) in self.levels.iter().enumerate() {
            let (addrs, weights) = self.corners(level, unit_pos);
            let base = self.param_offsets[l];
            let dst = &mut out[l * f..(l + 1) * f];
            dst.fill(0.0);
            for c in 0..8 {
                obs.on_access(AccessPhase::FeedForward, l as u32, c as u8, addrs[c]);
                let w = weights[c];
                let src = base + addrs[c] as usize * f;
                for (d, p) in dst.iter_mut().zip(&self.params[src..src + f]) {
                    *d += w * p;
                }
            }
        }
    }

    /// Backward pass: scatters `d_out` (gradient of the loss w.r.t. the
    /// embedding of `unit_pos`) into `grads`, reporting writes to `obs`.
    ///
    /// # Panics
    ///
    /// Panics if `d_out.len() != self.output_dim()` or
    /// `grads.values.len() != self.num_params()`.
    pub fn backward_into<O: GridAccessObserver + ?Sized>(
        &self,
        unit_pos: Vec3,
        d_out: &[f32],
        grads: &mut GridGradients,
        obs: &mut O,
    ) {
        assert_eq!(d_out.len(), self.output_dim(), "gradient width mismatch");
        assert_eq!(
            grads.values.len(),
            self.params.len(),
            "gradient buffer mismatch"
        );
        let f = self.cfg.features_per_entry;
        for (l, level) in self.levels.iter().enumerate() {
            let (addrs, weights) = self.corners(level, unit_pos);
            let base = self.param_offsets[l];
            let src = &d_out[l * f..(l + 1) * f];
            for c in 0..8 {
                obs.on_access(AccessPhase::BackProp, l as u32, c as u8, addrs[c]);
                let w = weights[c];
                let dst = base + addrs[c] as usize * f;
                for (g, s) in grads.values[dst..dst + f].iter_mut().zip(src) {
                    *g += w * s;
                }
            }
        }
        grads.count += 1;
    }

    // ------------------------------------------------------------------
    // Batched (SoA) kernels
    // ------------------------------------------------------------------

    /// Batched [`HashGrid::encode_into`]: encodes `unit_positions` into the
    /// row-major SoA buffer `out` (`n × output_dim`), reporting reads to
    /// `obs` in the same point-major order as the scalar kernel — per-point
    /// results and observer streams are identical to `n` scalar calls.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != unit_positions.len() * self.output_dim()`.
    pub fn encode_batch_into<O: GridAccessObserver + ?Sized>(
        &self,
        unit_positions: &[Vec3],
        out: &mut [f32],
        obs: &mut O,
    ) {
        let w = self.output_dim();
        assert_eq!(
            out.len(),
            unit_positions.len() * w,
            "SoA output buffer size mismatch"
        );
        for (p, row) in unit_positions.iter().zip(out.chunks_mut(w)) {
            self.encode_into(*p, row, obs);
        }
    }

    /// Unobserved batched encode, restructured level-major for SoA cache
    /// locality: each level's table is streamed over all points before the
    /// next level is touched. Per-point arithmetic (and therefore every
    /// output bit) matches [`HashGrid::encode_batch_into`] exactly; only
    /// the memory-access order differs, which is why this variant takes no
    /// observer.
    pub fn encode_batch_level_major(&self, unit_positions: &[Vec3], out: &mut [f32]) {
        let w = self.output_dim();
        assert_eq!(
            out.len(),
            unit_positions.len() * w,
            "SoA output buffer size mismatch"
        );
        for l in 0..self.levels.len() {
            self.encode_level_scalar(l, unit_positions, out);
        }
    }

    /// One level's encode, scalar kernel: streams level `l`'s table over
    /// all points, writing that level's `F` columns of the
    /// `n × output_dim` SoA buffer (all other columns are untouched).
    pub(crate) fn encode_level_scalar(&self, l: usize, unit_positions: &[Vec3], out: &mut [f32]) {
        self.encode_level_observed(l, unit_positions, out, &mut NullObserver);
    }

    /// [`HashGrid::encode_level_scalar`] with table reads reported to
    /// `obs` — the building block for observing kernel backends (the
    /// instrumented co-sim backend records the batched engine's real
    /// read stream through this). The arithmetic is the scalar level
    /// kernel's, so outputs are bit-identical to every conforming backend;
    /// a [`NullObserver`] compiles down to the unobserved kernel.
    pub fn encode_level_observed<O: GridAccessObserver + ?Sized>(
        &self,
        l: usize,
        unit_positions: &[Vec3],
        out: &mut [f32],
        obs: &mut O,
    ) {
        let w = self.output_dim();
        let f = self.cfg.features_per_entry;
        let level = &self.levels[l];
        let base = self.param_offsets[l];
        let col = l * f;
        if f == 2 {
            // Specialised F = 2 hot loop (the paper's configuration).
            for (i, p) in unit_positions.iter().enumerate() {
                let (addrs, weights) = self.corners(level, *p);
                let mut acc0 = 0.0f32;
                let mut acc1 = 0.0f32;
                for c in 0..8 {
                    obs.on_access(AccessPhase::FeedForward, l as u32, c as u8, addrs[c]);
                    let src = base + addrs[c] as usize * 2;
                    let wgt = weights[c];
                    acc0 += wgt * self.params[src];
                    acc1 += wgt * self.params[src + 1];
                }
                let dst = i * w + col;
                out[dst] = acc0;
                out[dst + 1] = acc1;
            }
        } else {
            for (i, p) in unit_positions.iter().enumerate() {
                let (addrs, weights) = self.corners(level, *p);
                let dst = &mut out[i * w + col..i * w + col + f];
                dst.fill(0.0);
                for c in 0..8 {
                    obs.on_access(AccessPhase::FeedForward, l as u32, c as u8, addrs[c]);
                    let wgt = weights[c];
                    let src = base + addrs[c] as usize * f;
                    for (d, p) in dst.iter_mut().zip(&self.params[src..src + f]) {
                        *d += wgt * p;
                    }
                }
            }
        }
    }

    /// Interpolation data for a full lane of [`F32x8::LANES`] points at one
    /// level: per-corner addresses (`addrs[c][k]` = corner `c` of point `k`)
    /// and lane-batched trilinear weights.
    ///
    /// Per-lane arithmetic is the exact IEEE operation sequence of
    /// [`HashGrid::corners`], so every weight bit-matches the scalar
    /// kernel's; hashed levels replace the `% table_size` with an equal
    /// power-of-two mask (the table size is always `1 << log2_table_size`).
    /// Always inlined so `#[target_feature]` callers (the fast kernels)
    /// compile the lane arithmetic with their wider instruction set
    /// instead of calling a separately-compiled baseline copy.
    #[inline(always)]
    fn corners_lanes(
        level: &GridLevel,
        pts: &[Vec3],
        addrs: &mut [[u32; F32x8::LANES]; 8],
        weights: &mut [F32x8; 8],
    ) {
        const LANES: usize = F32x8::LANES;
        debug_assert_eq!(pts.len(), LANES);
        let mut px = [0.0f32; LANES];
        let mut py = [0.0f32; LANES];
        let mut pz = [0.0f32; LANES];
        for (k, p) in pts.iter().enumerate() {
            px[k] = p.x;
            py[k] = p.y;
            pz[k] = p.z;
        }
        let n = F32x8::splat(level.resolution as f32);
        let eps = 1e-6;
        let sx = F32x8(px).clamp(0.0, 1.0 - eps) * n;
        let sy = F32x8(py).clamp(0.0, 1.0 - eps) * n;
        let sz = F32x8(pz).clamp(0.0, 1.0 - eps) * n;
        let (cx, cy, cz) = (sx.floor(), sy.floor(), sz.floor());
        let (fx, fy, fz) = (sx - cx, sy - cy, sz - cz);
        let one = F32x8::splat(1.0);
        let (gx, gy, gz) = (one - fx, one - fy, one - fz);
        let mut ix = [0u32; LANES];
        let mut iy = [0u32; LANES];
        let mut iz = [0u32; LANES];
        for k in 0..LANES {
            ix[k] = cx[k] as u32;
            iy[k] = cy[k] as u32;
            iz[k] = cz[k] as u32;
        }
        // Hashed levels always use a power-of-two table, so the Eq. 3
        // modulo reduces to a mask with the identical result.
        let hash_mask = (level.mode == AddressMode::Hashed && level.table_size.is_power_of_two())
            .then(|| level.table_size - 1);
        // The scalar kernel computes (wx*wy)*wz left-associated; the four
        // distinct wx*wy products are shared across corner pairs here —
        // same association, same bits, 4 fewer lane multiplies.
        let wxy = [gx * gy, fx * gy, gx * fy, fx * fy];
        // Per-axis address terms, computed once per lane instead of once
        // per corner. Unsigned arithmetic is exact mod 2^32, so combining
        // precomputed y/z terms yields bit-identical addresses to the
        // per-corner `spatial_hash` / `dense_index` calls.
        let mut yt = [[0u32; F32x8::LANES]; 2];
        let mut zt = [[0u32; F32x8::LANES]; 2];
        match (level.mode, hash_mask) {
            (AddressMode::Hashed, Some(_)) => {
                for k in 0..LANES {
                    yt[0][k] = iy[k].wrapping_mul(crate::hash::PI_2);
                    yt[1][k] = (iy[k] + 1).wrapping_mul(crate::hash::PI_2);
                    zt[0][k] = iz[k].wrapping_mul(crate::hash::PI_3);
                    zt[1][k] = (iz[k] + 1).wrapping_mul(crate::hash::PI_3);
                }
            }
            (AddressMode::Dense, _) => {
                let n = level.resolution + 1;
                for k in 0..LANES {
                    yt[0][k] = iy[k] * n;
                    yt[1][k] = (iy[k] + 1) * n;
                    zt[0][k] = iz[k] * n * n;
                    zt[1][k] = (iz[k] + 1) * n * n;
                }
            }
            (AddressMode::Hashed, None) => {}
        }
        for (c, &(dx, dy, dz)) in CORNER_OFFSETS.iter().enumerate() {
            let wz = if dz == 1 { fz } else { gz };
            weights[c] = wxy[(dx + dy * 2) as usize] * wz;
            let ac = &mut addrs[c];
            let (yc, zc) = (&yt[dy as usize], &zt[dz as usize]);
            match (level.mode, hash_mask) {
                (AddressMode::Hashed, Some(mask)) => {
                    for k in 0..LANES {
                        // PI_1 == 1, so the x term is the coordinate itself.
                        ac[k] = ((ix[k] + dx) ^ yc[k] ^ zc[k]) & mask;
                    }
                }
                (AddressMode::Hashed, None) => {
                    for k in 0..LANES {
                        ac[k] = spatial_hash(ix[k] + dx, iy[k] + dy, iz[k] + dz, level.table_size);
                    }
                }
                (AddressMode::Dense, _) => {
                    for k in 0..LANES {
                        ac[k] = (ix[k] + dx) + yc[k] + zc[k];
                    }
                }
            }
        }
    }

    /// SIMD lane-batched level-major encode: lanes of [`F32x8::LANES`]
    /// points move through each level together — trilinear weights and the
    /// 8-corner × F=2 accumulation run lane-parallel, table gathers stay
    /// per-lane. Per-point operation order is exactly the scalar kernel's
    /// (see [`crate::simd`] for the contract), so output bits match
    /// [`HashGrid::encode_batch_level_major`] for every batch size,
    /// including the scalar remainder tail. Grids with
    /// `features_per_entry != 2` fall back to the scalar kernel.
    pub fn encode_batch_simd(&self, unit_positions: &[Vec3], out: &mut [f32]) {
        let w = self.output_dim();
        assert_eq!(
            out.len(),
            unit_positions.len() * w,
            "SoA output buffer size mismatch"
        );
        for l in 0..self.levels.len() {
            self.encode_level_simd(l, unit_positions, out);
        }
    }

    /// One level's encode, SIMD kernel (lane-batched weights, per-lane
    /// gathers, scalar remainder tail) — the level body of
    /// [`HashGrid::encode_batch_simd`]. Falls back to the scalar level
    /// kernel when `features_per_entry != 2`.
    pub(crate) fn encode_level_simd(&self, l: usize, unit_positions: &[Vec3], out: &mut [f32]) {
        const LANES: usize = F32x8::LANES;
        if self.cfg.features_per_entry != 2 {
            return self.encode_level_scalar(l, unit_positions, out);
        }
        let w = self.output_dim();
        let n = unit_positions.len();
        let full = n - n % LANES;
        let mut addrs = [[0u32; LANES]; 8];
        let mut weights = [F32x8::ZERO; 8];
        let level = &self.levels[l];
        let base = self.param_offsets[l];
        let col = l * 2;
        for i in (0..full).step_by(LANES) {
            Self::corners_lanes(
                level,
                &unit_positions[i..i + LANES],
                &mut addrs,
                &mut weights,
            );
            let mut acc0 = F32x8::ZERO;
            let mut acc1 = F32x8::ZERO;
            for c in 0..8 {
                let mut f0 = [0.0f32; LANES];
                let mut f1 = [0.0f32; LANES];
                for k in 0..LANES {
                    let src = base + addrs[c][k] as usize * 2;
                    f0[k] = self.params[src];
                    f1[k] = self.params[src + 1];
                }
                acc0 += weights[c] * F32x8(f0);
                acc1 += weights[c] * F32x8(f1);
            }
            for k in 0..LANES {
                let dst = (i + k) * w + col;
                out[dst] = acc0[k];
                out[dst + 1] = acc1[k];
            }
        }
        // Remainder tail (< LANES points): the scalar F = 2 loop.
        for (i, p) in unit_positions.iter().enumerate().skip(full) {
            let (pa, pw) = self.corners(level, *p);
            let mut acc0 = 0.0f32;
            let mut acc1 = 0.0f32;
            for c in 0..8 {
                let src = base + pa[c] as usize * 2;
                let wgt = pw[c];
                acc0 += wgt * self.params[src];
                acc1 += wgt * self.params[src + 1];
            }
            let dst = i * w + col;
            out[dst] = acc0;
            out[dst + 1] = acc1;
        }
    }

    /// Fused (lossy-tier) level-major encode: the level body of
    /// [`HashGrid::encode_batch_fast`], see there for the contract.
    pub(crate) fn encode_level_fast(&self, l: usize, unit_positions: &[Vec3], out: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2_fma_available() {
            // SAFETY: AVX2+FMA presence was just verified at runtime.
            return unsafe { self.encode_level_fast_avx2(l, unit_positions, out) };
        }
        self.encode_level_fast_body(l, unit_positions, out);
    }

    // CALLER: `encode_level_fast` gates this behind
    // `simd::avx2_fma_available()` runtime detection.
    // SAFETY: only safe slice code inside; the sole obligation is the
    // AVX2+FMA target features, established by the caller's guard.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn encode_level_fast_avx2(&self, l: usize, unit_positions: &[Vec3], out: &mut [f32]) {
        self.encode_level_fast_body(l, unit_positions, out);
    }

    // CONTRACT: lossy-tier — fused interpolation backing `FastKernels`.
    #[inline(always)]
    fn encode_level_fast_body(&self, l: usize, unit_positions: &[Vec3], out: &mut [f32]) {
        const LANES: usize = F32x8::LANES;
        if self.cfg.features_per_entry != 2 {
            return self.encode_level_scalar(l, unit_positions, out);
        }
        let w = self.output_dim();
        let n = unit_positions.len();
        let full = n - n % LANES;
        let mut addrs = [[0u32; LANES]; 8];
        let mut weights = [F32x8::ZERO; 8];
        let level = &self.levels[l];
        let base = self.param_offsets[l];
        let col = l * 2;
        for i in (0..full).step_by(LANES) {
            Self::corners_lanes(
                level,
                &unit_positions[i..i + LANES],
                &mut addrs,
                &mut weights,
            );
            let mut acc0 = F32x8::ZERO;
            let mut acc1 = F32x8::ZERO;
            for c in 0..8 {
                let mut f0 = [0.0f32; LANES];
                let mut f1 = [0.0f32; LANES];
                for k in 0..LANES {
                    let src = base + addrs[c][k] as usize * 2;
                    f0[k] = self.params[src];
                    f1[k] = self.params[src + 1];
                }
                acc0 = weights[c].mul_add(F32x8(f0), acc0);
                acc1 = weights[c].mul_add(F32x8(f1), acc1);
            }
            for k in 0..LANES {
                let dst = (i + k) * w + col;
                out[dst] = acc0[k];
                out[dst + 1] = acc1[k];
            }
        }
        // Remainder tail: the same per-point fused sequence, scalar.
        for (i, p) in unit_positions.iter().enumerate().skip(full) {
            let (pa, pw) = self.corners(level, *p);
            let mut acc0 = 0.0f32;
            let mut acc1 = 0.0f32;
            for c in 0..8 {
                let src = base + pa[c] as usize * 2;
                let wgt = pw[c];
                acc0 = wgt.mul_add(self.params[src], acc0);
                acc1 = wgt.mul_add(self.params[src + 1], acc1);
            }
            let dst = i * w + col;
            out[dst] = acc0;
            out[dst + 1] = acc1;
        }
    }

    /// Fused (lossy-tier) level-major encode: the lane walk, table gathers
    /// and trilinear weights are exactly [`HashGrid::encode_batch_simd`]'s,
    /// but the 8-corner accumulation uses `mul_add` — one rounding per
    /// corner instead of two. The lane path and the scalar remainder tail
    /// execute the *identical* per-point fused sequence (`f32::mul_add` is
    /// correctly rounded everywhere, AVX2 or not), so results are still
    /// deterministic across batch sizes, chunkings and worker counts —
    /// they just differ from the strict kernels by bounded rounding.
    /// Grids with `features_per_entry != 2` fall back to the scalar kernel.
    pub fn encode_batch_fast(&self, unit_positions: &[Vec3], out: &mut [f32]) {
        let w = self.output_dim();
        assert_eq!(
            out.len(),
            unit_positions.len() * w,
            "SoA output buffer size mismatch"
        );
        for l in 0..self.levels.len() {
            self.encode_level_fast(l, unit_positions, out);
        }
    }

    /// Parallel unobserved batched encode: points are split into fixed-size
    /// chunks processed on the rayon pool, each chunk running the
    /// level-major SoA kernel. All writes are disjoint output rows, so the
    /// result is bit-identical for any worker count.
    pub fn par_encode_batch(&self, unit_positions: &[Vec3], out: &mut [f32]) {
        self.par_encode_batch_with(&crate::kernels::scalar(), unit_positions, out);
    }

    /// The declared [`WritePlan`](crate::kernels::WritePlan) of
    /// [`HashGrid::par_encode_batch_with`]: `ceil(points/chunk)` tasks,
    /// task `t` writing rows `[t·chunk, min((t+1)·chunk, points))` of
    /// `output_dim` elements each — verified disjoint and gap-free for
    /// all shapes by the conformance prover, and enforced at runtime
    /// under [`Kernels::plan_conformance`](crate::kernels::Kernels).
    pub fn encode_write_plan() -> crate::kernels::WritePlan {
        crate::kernels::WritePlan::chunked(
            concat!(file!(), ":", line!(), " HashGrid::par_encode_batch_with"),
            "encode SoA output",
            "points",
            "chunk",
            Some("output_dim"),
        )
    }

    /// The declared write plan of
    /// [`HashGrid::par_encode_batch_levels_with`] — the same chunked row
    /// decomposition as [`HashGrid::encode_write_plan`]; only the listed
    /// levels' columns inside each row chunk are touched, which is a
    /// refinement of the declared per-task interval.
    pub fn encode_levels_write_plan() -> crate::kernels::WritePlan {
        crate::kernels::WritePlan::chunked(
            concat!(
                file!(),
                ":",
                line!(),
                " HashGrid::par_encode_batch_levels_with"
            ),
            "level-subset encode SoA output",
            "points",
            "chunk",
            Some("output_dim"),
        )
    }

    /// The declared write plan of [`HashGrid::par_backward_batch_with`]:
    /// one task per grid level, task `l` owning
    /// `[param_offsets[l], param_offsets[l+1])` of the flat gradient
    /// buffer — a cut partition whose monotone offset table the dispatch
    /// supplies (and [`WritePlan::instantiate`](crate::kernels::WritePlan)
    /// re-validates) at each concrete shape.
    pub fn scatter_write_plan() -> crate::kernels::WritePlan {
        crate::kernels::WritePlan::cut_partition(
            concat!(file!(), ":", line!(), " HashGrid::par_backward_batch_with"),
            "grid gradient buffer",
            "param_offsets",
            "levels",
            "params",
        )
    }

    /// [`HashGrid::par_encode_batch`] with an explicit kernel backend
    /// (see [`crate::kernels`]); results are bit-identical across
    /// backends, chunkings and worker counts. Backends that request
    /// [`crate::kernels::Kernels::sequential_grid`] execution (recording
    /// co-sim backends) get the whole batch as one chunk on the calling
    /// thread.
    pub fn par_encode_batch_with(
        &self,
        backend: &BackendHandle,
        unit_positions: &[Vec3],
        out: &mut [f32],
    ) {
        use rayon::prelude::*;
        let w = self.output_dim();
        assert_eq!(
            out.len(),
            unit_positions.len() * w,
            "SoA output buffer size mismatch"
        );
        let n = unit_positions.len();
        const CHUNK: usize = 256;
        let sequential =
            n <= CHUNK || rayon::current_num_threads() <= 1 || backend.sequential_grid();
        let _plan = backend.plan_conformance().then(|| {
            // The instantiated chunk must match the branch actually taken:
            // the sequential fallback writes the whole batch as one task.
            let chunk = if sequential { n.max(1) } else { CHUNK };
            crate::kernels::WriteLedger::global().expect_plan(
                &Self::encode_write_plan().instantiate(
                    &[
                        ("points", n as i128),
                        ("chunk", chunk as i128),
                        ("output_dim", w as i128),
                    ],
                    &[],
                ),
                out.as_ptr(),
            )
        });
        if sequential {
            backend.grid_encode_chunk(self, unit_positions, out);
            return;
        }
        out.par_chunks_mut(CHUNK * w)
            .zip(unit_positions.par_chunks(CHUNK))
            .for_each(|(out_chunk, pos_chunk)| {
                backend.grid_encode_chunk(self, pos_chunk, out_chunk);
            });
    }

    /// Parallel batched encode of a *subset of levels*: like
    /// [`HashGrid::par_encode_batch_with`], but only the listed levels'
    /// columns of the `n × output_dim` SoA buffer are (re)computed; all
    /// other columns are left exactly as they were. This is the seam the
    /// occupancy subsystem's persistent cell→embedding cache uses to
    /// re-encode only levels whose parameters changed since the cache was
    /// filled (see [`HashGrid::level_versions`]).
    ///
    /// Each level's per-point arithmetic is the same kernel the full
    /// encode runs, so the refreshed columns are bit-identical to a full
    /// [`HashGrid::par_encode_batch_with`] — across backends, chunkings
    /// and worker counts.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != unit_positions.len() * self.output_dim()`
    /// or any level index is out of range.
    pub fn par_encode_batch_levels_with(
        &self,
        backend: &BackendHandle,
        levels: &[usize],
        unit_positions: &[Vec3],
        out: &mut [f32],
    ) {
        use rayon::prelude::*;
        let w = self.output_dim();
        assert_eq!(
            out.len(),
            unit_positions.len() * w,
            "SoA output buffer size mismatch"
        );
        assert!(
            levels.iter().all(|&l| l < self.levels.len()),
            "level index out of range"
        );
        if levels.is_empty() || unit_positions.is_empty() {
            return;
        }
        let n = unit_positions.len();
        const CHUNK: usize = 256;
        let sequential =
            n <= CHUNK || rayon::current_num_threads() <= 1 || backend.sequential_grid();
        let _plan = backend.plan_conformance().then(|| {
            let chunk = if sequential { n.max(1) } else { CHUNK };
            crate::kernels::WriteLedger::global().expect_plan(
                &Self::encode_levels_write_plan().instantiate(
                    &[
                        ("points", n as i128),
                        ("chunk", chunk as i128),
                        ("output_dim", w as i128),
                    ],
                    &[],
                ),
                out.as_ptr(),
            )
        });
        if sequential {
            backend.grid_encode_levels_chunk(self, levels, unit_positions, out);
            return;
        }
        out.par_chunks_mut(CHUNK * w)
            .zip(unit_positions.par_chunks(CHUNK))
            .for_each(|(out_chunk, pos_chunk)| {
                backend.grid_encode_levels_chunk(self, levels, pos_chunk, out_chunk);
            });
    }

    /// Batched [`HashGrid::backward_into`]: scatters the row-major gradient
    /// buffer `d_out` (`n × output_dim`) for `unit_positions` into `grads`,
    /// point-major — results and observer stream are identical to `n`
    /// scalar calls.
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes mismatch the batch or the grid.
    pub fn backward_batch_into<O: GridAccessObserver + ?Sized>(
        &self,
        unit_positions: &[Vec3],
        d_out: &[f32],
        grads: &mut GridGradients,
        obs: &mut O,
    ) {
        let w = self.output_dim();
        assert_eq!(
            d_out.len(),
            unit_positions.len() * w,
            "SoA gradient buffer size mismatch"
        );
        for (p, row) in unit_positions.iter().zip(d_out.chunks(w)) {
            self.backward_into(*p, row, grads, obs);
        }
    }

    /// Parallel unobserved batched scatter: one task per grid level, each
    /// owning that level's disjoint slice of the gradient buffer and
    /// walking all points in order. Per-parameter accumulation order is
    /// point order — exactly the scalar kernel's — so results are
    /// bit-identical to [`HashGrid::backward_batch_into`] for any worker
    /// count.
    pub fn par_backward_batch(
        &self,
        unit_positions: &[Vec3],
        d_out: &[f32],
        grads: &mut GridGradients,
    ) {
        self.par_backward_batch_with(&crate::kernels::scalar(), unit_positions, d_out, grads);
    }

    /// One level's scatter, scalar reference kernel: walks all points in
    /// order, accumulating into that level's disjoint gradient slice.
    pub(crate) fn scatter_level_scalar(
        &self,
        l: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    ) {
        self.scatter_level_observed(l, level_grads, unit_positions, d_out, &mut NullObserver);
    }

    /// [`HashGrid::scatter_level_scalar`] with every gradient write
    /// reported to `obs` — the backward counterpart of
    /// [`HashGrid::encode_level_observed`] (the instrumented co-sim
    /// backend records the engine's real update stream through this).
    /// `level_grads` is level `l`'s disjoint slice of the flat gradient
    /// buffer; per-parameter accumulation runs in point order, so the
    /// result is bit-identical to every conforming backend.
    pub fn scatter_level_observed<O: GridAccessObserver + ?Sized>(
        &self,
        l: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
        obs: &mut O,
    ) {
        let f = self.cfg.features_per_entry;
        let w = self.output_dim();
        let level = &self.levels[l];
        let col = l * f;
        if f == 2 {
            for (i, p) in unit_positions.iter().enumerate() {
                let (addrs, weights) = self.corners(level, *p);
                let g0 = d_out[i * w + col];
                let g1 = d_out[i * w + col + 1];
                for c in 0..8 {
                    obs.on_access(AccessPhase::BackProp, l as u32, c as u8, addrs[c]);
                    let wgt = weights[c];
                    let dst = addrs[c] as usize * 2;
                    level_grads[dst] += wgt * g0;
                    level_grads[dst + 1] += wgt * g1;
                }
            }
        } else {
            for (i, p) in unit_positions.iter().enumerate() {
                let (addrs, weights) = self.corners(level, *p);
                let src = &d_out[i * w + col..i * w + col + f];
                for c in 0..8 {
                    obs.on_access(AccessPhase::BackProp, l as u32, c as u8, addrs[c]);
                    let wgt = weights[c];
                    let dst = addrs[c] as usize * f;
                    for (g, s) in level_grads[dst..dst + f].iter_mut().zip(src) {
                        *g += wgt * s;
                    }
                }
            }
        }
    }

    /// One level's scatter, SIMD kernel: corner addresses and trilinear
    /// weights are precomputed lane-batched ([`HashGrid::corners_lanes`]),
    /// then the 8-corner × F=2 accumulation walks the lane's points *in
    /// point order* — scatters can collide on a table entry, so the
    /// accumulation itself must stay sequential per parameter to preserve
    /// the scalar kernel's addition order. Bit-identical to
    /// [`HashGrid::scatter_level_scalar`].
    pub(crate) fn scatter_level_simd(
        &self,
        l: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    ) {
        const LANES: usize = F32x8::LANES;
        let f = self.cfg.features_per_entry;
        if f != 2 {
            return self.scatter_level_scalar(l, level_grads, unit_positions, d_out);
        }
        let w = self.output_dim();
        let level = &self.levels[l];
        let col = l * 2;
        let n = unit_positions.len();
        let full = n - n % LANES;
        let mut addrs = [[0u32; LANES]; 8];
        let mut weights = [F32x8::ZERO; 8];
        for i in (0..full).step_by(LANES) {
            Self::corners_lanes(
                level,
                &unit_positions[i..i + LANES],
                &mut addrs,
                &mut weights,
            );
            for k in 0..LANES {
                let g0 = d_out[(i + k) * w + col];
                let g1 = d_out[(i + k) * w + col + 1];
                for c in 0..8 {
                    let wgt = weights[c][k];
                    let dst = addrs[c][k] as usize * 2;
                    level_grads[dst] += wgt * g0;
                    level_grads[dst + 1] += wgt * g1;
                }
            }
        }
        if full < n {
            self.scatter_level_scalar(l, level_grads, &unit_positions[full..], &d_out[full * w..]);
        }
    }

    /// Fused (lossy-tier) scatter: lane-batched corner/weight precompute
    /// like [`HashGrid::scatter_level_simd`], per-parameter accumulation in
    /// point order like every backend, but each `grad += w·g` folds into a
    /// single `mul_add` rounding. Point order is preserved, so the result
    /// is deterministic for any worker count; it differs from the strict
    /// kernels only by bounded rounding. `features_per_entry != 2` falls
    /// back to the scalar kernel.
    pub(crate) fn scatter_level_fast(
        &self,
        l: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2_fma_available() {
            // SAFETY: AVX2+FMA presence was just verified at runtime.
            return unsafe { self.scatter_level_fast_avx2(l, level_grads, unit_positions, d_out) };
        }
        self.scatter_level_fast_body(l, level_grads, unit_positions, d_out);
    }

    // CALLER: `scatter_level_fast` gates this behind
    // `simd::avx2_fma_available()` runtime detection.
    // SAFETY: only safe slice code inside; the sole obligation is the
    // AVX2+FMA target features, established by the caller's guard.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn scatter_level_fast_avx2(
        &self,
        l: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    ) {
        self.scatter_level_fast_body(l, level_grads, unit_positions, d_out);
    }

    // CONTRACT: lossy-tier — fused scatter backing `FastKernels`.
    #[inline(always)]
    fn scatter_level_fast_body(
        &self,
        l: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    ) {
        const LANES: usize = F32x8::LANES;
        let f = self.cfg.features_per_entry;
        if f != 2 {
            return self.scatter_level_scalar(l, level_grads, unit_positions, d_out);
        }
        let w = self.output_dim();
        let level = &self.levels[l];
        let col = l * 2;
        let n = unit_positions.len();
        let full = n - n % LANES;
        let mut addrs = [[0u32; LANES]; 8];
        let mut weights = [F32x8::ZERO; 8];
        for i in (0..full).step_by(LANES) {
            Self::corners_lanes(
                level,
                &unit_positions[i..i + LANES],
                &mut addrs,
                &mut weights,
            );
            for k in 0..LANES {
                let g0 = d_out[(i + k) * w + col];
                let g1 = d_out[(i + k) * w + col + 1];
                for c in 0..8 {
                    let wgt = weights[c][k];
                    let dst = addrs[c][k] as usize * 2;
                    level_grads[dst] = wgt.mul_add(g0, level_grads[dst]);
                    level_grads[dst + 1] = wgt.mul_add(g1, level_grads[dst + 1]);
                }
            }
        }
        // Remainder tail: the same per-point fused sequence, scalar.
        for (i, p) in unit_positions.iter().enumerate().skip(full) {
            let (pa, pw) = self.corners(level, *p);
            let g0 = d_out[i * w + col];
            let g1 = d_out[i * w + col + 1];
            for c in 0..8 {
                let wgt = pw[c];
                let dst = pa[c] as usize * 2;
                level_grads[dst] = wgt.mul_add(g0, level_grads[dst]);
                level_grads[dst + 1] = wgt.mul_add(g1, level_grads[dst + 1]);
            }
        }
    }

    /// [`HashGrid::par_backward_batch`] with an explicit kernel backend
    /// (see [`crate::kernels`]); per-parameter accumulation stays in point
    /// order on every backend, so results are bit-identical across
    /// backends and worker counts. Backends that request
    /// [`crate::kernels::Kernels::sequential_grid`] execution get the
    /// levels one by one, in level order, on the calling thread.
    pub fn par_backward_batch_with(
        &self,
        backend: &BackendHandle,
        unit_positions: &[Vec3],
        d_out: &[f32],
        grads: &mut GridGradients,
    ) {
        use rayon::prelude::*;
        let w = self.output_dim();
        assert_eq!(
            d_out.len(),
            unit_positions.len() * w,
            "SoA gradient buffer size mismatch"
        );
        assert_eq!(
            grads.values.len(),
            self.params.len(),
            "gradient buffer mismatch"
        );
        let _plan = backend.plan_conformance().then(|| {
            let offsets: Vec<i128> = self.param_offsets.iter().map(|&o| o as i128).collect();
            crate::kernels::WriteLedger::global().expect_plan(
                &Self::scatter_write_plan().instantiate(
                    &[
                        ("levels", self.levels.len() as i128),
                        ("params", self.params.len() as i128),
                    ],
                    &[&offsets],
                ),
                grads.values.as_ptr(),
            )
        });
        // Slice the flat gradient buffer into per-level disjoint regions.
        let mut level_slices: Vec<(usize, &mut [f32])> = Vec::with_capacity(self.levels.len());
        let mut rest: &mut [f32] = &mut grads.values;
        for l in 0..self.levels.len() {
            let len = self.param_offsets[l + 1] - self.param_offsets[l];
            let (head, tail) = rest.split_at_mut(len);
            level_slices.push((l, head));
            rest = tail;
        }
        if backend.sequential_grid() {
            for (l, level_grads) in level_slices {
                backend.grid_scatter_level(self, l, level_grads, unit_positions, d_out);
            }
        } else {
            level_slices.into_par_iter().for_each(|(l, level_grads)| {
                backend.grid_scatter_level(self, l, level_grads, unit_positions, d_out);
            });
        }
        grads.count += unit_positions.len();
    }

    /// Allocates a zeroed gradient buffer shaped like this grid.
    pub fn zero_grads(&self) -> GridGradients {
        GridGradients {
            values: vec![0.0; self.params.len()],
            count: 0,
        }
    }

    /// Table reads performed per encoded point (8 corners × L levels).
    pub fn reads_per_point(&self) -> usize {
        8 * self.cfg.levels
    }
}

/// Accumulated gradients for a [`HashGrid`] (shape-matched flat buffer).
#[derive(Debug, Clone)]
pub struct GridGradients {
    /// Gradient value per parameter scalar.
    pub values: Vec<f32>,
    /// Number of points accumulated since the last reset.
    pub count: usize,
}

impl GridGradients {
    /// Resets all gradients to zero.
    pub fn zero(&mut self) {
        self.values.fill(0.0);
        self.count = 0;
    }

    /// Scales all gradients by `s` (e.g. 1/batch for mean reduction).
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.values {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_grid() -> HashGrid {
        let cfg = HashGridConfig {
            levels: 3,
            features_per_entry: 2,
            log2_table_size: 10,
            base_resolution: 4,
            max_resolution: 32,
            store_fp16: false,
            init_scale: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(7);
        HashGrid::new_random(cfg, &mut rng)
    }

    #[test]
    fn level_resolutions_are_geometric() {
        let cfg = HashGridConfig {
            levels: 4,
            base_resolution: 16,
            max_resolution: 128,
            ..HashGridConfig::default()
        };
        let res = cfg.level_resolutions();
        assert_eq!(res.first(), Some(&16));
        assert_eq!(res.last(), Some(&128));
        for w in res.windows(2) {
            assert!(w[1] > w[0], "resolutions must increase");
        }
    }

    #[test]
    fn coarse_levels_are_dense_fine_levels_hashed() {
        let g = small_grid();
        // level 0: res 4 → 125 vertices < 1024 → dense
        assert_eq!(g.levels()[0].mode, AddressMode::Dense);
        // level 2: res 32 → 35937 vertices > 1024 → hashed
        assert_eq!(g.levels()[2].mode, AddressMode::Hashed);
        assert_eq!(g.levels()[2].table_size, 1024);
    }

    #[test]
    fn encode_output_width() {
        let g = small_grid();
        assert_eq!(g.encode(Vec3::splat(0.5)).len(), 6);
    }

    #[test]
    fn encode_at_vertex_returns_vertex_feature() {
        // At an exact dense-grid vertex the interpolation weight collapses
        // onto one corner, so the embedding equals that vertex's feature.
        let g = small_grid();
        let level = &g.levels()[0];
        assert_eq!(level.mode, AddressMode::Dense);
        let res = level.resolution; // 4
        let p = Vec3::new(1.0 / res as f32, 2.0 / res as f32, 3.0 / res as f32);
        let emb = g.encode(p);
        let addr = crate::hash::dense_index(1, 2, 3, res) as usize;
        let f = g.config().features_per_entry;
        let base = addr * f; // level 0 param offset is 0
        for (k, (e, p)) in emb[..f].iter().zip(&g.params()[base..base + f]).enumerate() {
            assert!((e - p).abs() < 1e-5, "feature {k}: {e} vs {p}");
        }
    }

    #[test]
    fn encode_is_continuous_across_cell_boundary() {
        let g = small_grid();
        let eps = 1e-5f32;
        let boundary = 0.25; // a vertex plane of the res-4 level
        let a = g.encode(Vec3::new(boundary - eps, 0.4, 0.6));
        let b = g.encode(Vec3::new(boundary + eps, 0.4, 0.6));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "discontinuity: {x} vs {y}");
        }
    }

    #[test]
    fn encode_clamps_out_of_range_positions() {
        let g = small_grid();
        let inside = g.encode(Vec3::new(0.999_999, 0.0, 0.5));
        let outside = g.encode(Vec3::new(5.0, -3.0, 0.5));
        let clamped = g.encode(Vec3::new(1.0, 0.0, 0.5));
        assert_eq!(outside, clamped);
        // and clamped values are close to the inside-the-box sample
        for (x, y) in inside.iter().zip(&clamped) {
            assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn trilinear_weights_sum_to_one() {
        let g = small_grid();
        for level in g.levels() {
            let (_, w) = g.corners(level, Vec3::new(0.31, 0.77, 0.13));
            let sum: f32 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut g = small_grid();
        let p = Vec3::new(0.37, 0.52, 0.81);
        let d_out: Vec<f32> = (0..g.output_dim())
            .map(|i| 0.1 * (i as f32 + 1.0))
            .collect();

        let mut grads = g.zero_grads();
        g.backward_into(p, &d_out, &mut grads, &mut NullObserver);

        // L(params) = dot(encode(p), d_out); check dL/dparam via FD on a few
        // touched parameters.
        let loss =
            |g: &HashGrid| -> f32 { g.encode(p).iter().zip(&d_out).map(|(a, b)| a * b).sum() };
        let eps = 1e-3;
        let touched: Vec<usize> = grads
            .values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v.abs() > 1e-8)
            .map(|(i, _)| i)
            .take(12)
            .collect();
        assert!(!touched.is_empty());
        for i in touched {
            let orig = g.params()[i];
            g.params_mut()[i] = orig + eps;
            let lp = loss(&g);
            g.params_mut()[i] = orig - eps;
            let lm = loss(&g);
            g.params_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads.values[i]).abs() < 1e-2,
                "param {i}: fd {fd} vs analytic {}",
                grads.values[i]
            );
        }
    }

    #[test]
    fn observer_sees_8_reads_per_level() {
        struct Counter(usize, usize);
        impl GridAccessObserver for Counter {
            fn on_access(&mut self, phase: AccessPhase, _: u32, _: u8, _: u32) {
                match phase {
                    AccessPhase::FeedForward => self.0 += 1,
                    AccessPhase::BackProp => self.1 += 1,
                }
            }
        }
        let g = small_grid();
        let mut obs = Counter(0, 0);
        let mut out = vec![0.0; g.output_dim()];
        g.encode_into(Vec3::splat(0.4), &mut out, &mut obs);
        assert_eq!(obs.0, 8 * g.config().levels);
        assert_eq!(obs.1, 0);

        let mut grads = g.zero_grads();
        let d = vec![1.0; g.output_dim()];
        g.backward_into(Vec3::splat(0.4), &d, &mut grads, &mut obs);
        assert_eq!(obs.1, 8 * g.config().levels);
        assert_eq!(g.reads_per_point(), 8 * g.config().levels);
    }

    #[test]
    fn size_factor_scales_table() {
        let cfg = HashGridConfig::default();
        let quarter = cfg.clone().with_size_factor(0.25);
        assert_eq!(quarter.log2_table_size, cfg.log2_table_size - 2);
        let same = cfg.clone().with_size_factor(1.0);
        assert_eq!(same.log2_table_size, cfg.log2_table_size);
    }

    #[test]
    fn fp16_storage_quantises() {
        let cfg = HashGridConfig {
            store_fp16: true,
            ..HashGridConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = HashGrid::new_random(cfg, &mut rng);
        g.params_mut()[0] = 0.1; // not fp16-representable
        g.quantize_storage();
        assert_eq!(g.params()[0], fp16::quantize(0.1));
    }

    #[test]
    fn grad_buffer_ops() {
        let g = small_grid();
        let mut grads = g.zero_grads();
        grads.values[3] = 2.0;
        grads.count = 4;
        grads.scale(0.5);
        assert_eq!(grads.values[3], 1.0);
        grads.zero();
        assert_eq!(grads.values[3], 0.0);
        assert_eq!(grads.count, 0);
    }

    #[test]
    fn paper_scale_config_sizes() {
        // The Instant-3D density grid: 2^18 entries × 2 features × 2 B = 1 MB.
        let density = HashGridConfig {
            levels: 1,
            log2_table_size: 18,
            base_resolution: 512,
            max_resolution: 512,
            ..HashGridConfig::default()
        };
        assert_eq!(density.table_bytes_fp16(), 1 << 20);
        // Color grid 2^16 entries → 256 KB.
        let color = density.clone().with_size_factor(0.25);
        assert_eq!(color.table_bytes_fp16(), 256 * 1024);
    }

    #[test]
    fn level_versions_track_sparse_steps_precisely() {
        use crate::adam::{Adam, AdamConfig};
        let mut g = small_grid();
        let v0 = g.level_versions().to_vec();
        // A sparse step touching only level 1's parameter range bumps
        // exactly level 1.
        let start = g.param_offsets[1];
        let touched = vec![start, start + 3];
        let grads = vec![0.5f32; g.num_params()];
        let mut opt = Adam::new(AdamConfig::for_grid(), g.num_params());
        g.apply_sparse_step(&mut opt, &grads, &touched);
        let v1 = g.level_versions().to_vec();
        assert_eq!(v1[0], v0[0]);
        assert!(v1[1] > v0[1]);
        assert_eq!(v1[2], v0[2]);
        // An empty step changes nothing.
        g.apply_sparse_step(&mut opt, &grads, &[]);
        assert_eq!(g.level_versions(), &v1[..]);
        // params_mut is conservative: every level bumps.
        let _ = g.params_mut();
        let v2 = g.level_versions().to_vec();
        assert!(v2.iter().zip(&v1).all(|(a, b)| a > b));
    }

    #[test]
    fn level_subset_encode_matches_full_encode_columns() {
        let g = small_grid();
        let mut rng = StdRng::seed_from_u64(21);
        let points: Vec<Vec3> = (0..37)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                )
            })
            .collect();
        let w = g.output_dim();
        let f = g.config().features_per_entry;
        for backend in crate::kernels::registered() {
            // Per-backend golden: a lossy backend's subset encode must
            // match that backend's own full encode (self-consistency);
            // for strict backends this is also the scalar golden.
            let mut full = vec![0.0f32; points.len() * w];
            backend.grid_encode_chunk(&g, &points, &mut full);
            // Sentinel-filled buffer: untouched columns must keep it.
            let mut partial = vec![-7.0f32; points.len() * w];
            g.par_encode_batch_levels_with(&backend, &[1], &points, &mut partial);
            for i in 0..points.len() {
                for l in 0..g.levels().len() {
                    for k in 0..f {
                        let idx = i * w + l * f + k;
                        if l == 1 {
                            assert_eq!(partial[idx], full[idx], "{backend} point {i}");
                        } else {
                            assert_eq!(partial[idx], -7.0, "{backend} column {l} touched");
                        }
                    }
                }
            }
            // Empty level set: nothing written.
            let mut untouched = vec![-3.0f32; points.len() * w];
            g.par_encode_batch_levels_with(&backend, &[], &points, &mut untouched);
            assert!(untouched.iter().all(|&v| v == -3.0));
            // All levels: identical to the full encode.
            let all: Vec<usize> = (0..g.levels().len()).collect();
            let mut whole = vec![0.0f32; points.len() * w];
            g.par_encode_batch_levels_with(&backend, &all, &points, &mut whole);
            assert_eq!(whole, full, "{backend}");
        }
    }
}
