//! Composite analytic radiance fields: the ground-truth "scenes".

use crate::primitives::Primitive;
use instant3d_nerf::field::RadianceField;
use instant3d_nerf::math::{Aabb, Vec3};

/// An analytic radiance field composed of soft primitives.
///
/// Density is the sum of the primitives' contributions; color is the
/// density-weighted average of the contributing primitives' colors — the
/// usual way participating-media compositions mix emitters.
///
/// # Example
///
/// ```
/// use instant3d_scenes::{AnalyticScene, Primitive, Shape};
/// use instant3d_nerf::field::RadianceField;
/// use instant3d_nerf::math::Vec3;
///
/// let scene = AnalyticScene::new(
///     "demo",
///     vec![Primitive::matte(
///         Shape::Sphere { center: Vec3::ZERO, radius: 0.4 },
///         20.0,
///         Vec3::new(1.0, 0.0, 0.0),
///     )],
/// );
/// let (sigma, _) = scene.query(Vec3::ZERO, Vec3::X);
/// assert_eq!(sigma, 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct AnalyticScene {
    name: String,
    primitives: Vec<Primitive>,
    aabb: Aabb,
}

impl AnalyticScene {
    /// Builds a scene; the AABB is the padded union of the primitive bounds.
    ///
    /// # Panics
    ///
    /// Panics if `primitives` is empty.
    pub fn new(name: impl Into<String>, primitives: Vec<Primitive>) -> Self {
        assert!(
            !primitives.is_empty(),
            "a scene needs at least one primitive"
        );
        let mut aabb = primitives[0].bounds();
        for p in &primitives[1..] {
            aabb = aabb.union(&p.bounds());
        }
        // Pad a little so cameras see the whole silhouette.
        let pad = aabb.extent().max_component() * 0.05;
        let aabb = Aabb::new(aabb.min - Vec3::splat(pad), aabb.max + Vec3::splat(pad));
        AnalyticScene {
            name: name.into(),
            primitives,
            aabb,
        }
    }

    /// Like [`AnalyticScene::new`] but with an explicit bounding box (used
    /// by room scenes whose primitives line the walls).
    pub fn with_aabb(name: impl Into<String>, primitives: Vec<Primitive>, aabb: Aabb) -> Self {
        assert!(
            !primitives.is_empty(),
            "a scene needs at least one primitive"
        );
        AnalyticScene {
            name: name.into(),
            primitives,
            aabb,
        }
    }

    /// Scene name (used in experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primitives composing the scene.
    pub fn primitives(&self) -> &[Primitive] {
        &self.primitives
    }
}

impl RadianceField for AnalyticScene {
    fn aabb(&self) -> Aabb {
        self.aabb
    }

    fn query(&self, pos: Vec3, dir: Vec3) -> (f32, Vec3) {
        let mut sigma = 0.0f32;
        let mut color = Vec3::ZERO;
        for p in &self.primitives {
            let d = p.density_at(pos);
            if d > 0.0 {
                sigma += d;
                color += p.color_at(pos, dir) * d;
            }
        }
        if sigma > 0.0 {
            (sigma, color / sigma)
        } else {
            (0.0, Vec3::ZERO)
        }
    }

    fn density(&self, pos: Vec3) -> f32 {
        self.primitives.iter().map(|p| p.density_at(pos)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::Shape;

    fn two_ball_scene() -> AnalyticScene {
        AnalyticScene::new(
            "two-balls",
            vec![
                Primitive::matte(
                    Shape::Sphere {
                        center: Vec3::new(-0.5, 0.0, 0.0),
                        radius: 0.3,
                    },
                    10.0,
                    Vec3::new(1.0, 0.0, 0.0),
                ),
                Primitive::matte(
                    Shape::Sphere {
                        center: Vec3::new(0.5, 0.0, 0.0),
                        radius: 0.3,
                    },
                    10.0,
                    Vec3::new(0.0, 0.0, 1.0),
                ),
            ],
        )
    }

    #[test]
    fn aabb_covers_all_primitives() {
        let s = two_ball_scene();
        assert!(s.aabb().contains(Vec3::new(-0.5, 0.0, 0.0)));
        assert!(s.aabb().contains(Vec3::new(0.5, 0.0, 0.0)));
        assert!(s.aabb().contains(Vec3::new(0.8, 0.0, 0.0)));
    }

    #[test]
    fn density_sums_color_averages() {
        let s = two_ball_scene();
        // Inside the left ball only.
        let (sig, col) = s.query(Vec3::new(-0.5, 0.0, 0.0), Vec3::X);
        assert_eq!(sig, 10.0);
        assert!(col.x > col.z, "left ball is red-ish: {col}");
        // Empty middle.
        let (sig0, col0) = s.query(Vec3::ZERO, Vec3::X);
        assert_eq!(sig0, 0.0);
        assert_eq!(col0, Vec3::ZERO);
    }

    #[test]
    fn density_shortcut_matches_query() {
        let s = two_ball_scene();
        for p in [
            Vec3::new(-0.5, 0.0, 0.0),
            Vec3::new(0.45, 0.05, 0.0),
            Vec3::splat(0.2),
        ] {
            assert!((s.density(p) - s.query(p, Vec3::X).0).abs() < 1e-6);
        }
    }

    #[test]
    fn name_is_preserved() {
        assert_eq!(two_ball_scene().name(), "two-balls");
        assert_eq!(two_ball_scene().primitives().len(), 2);
    }

    #[test]
    #[should_panic]
    fn empty_scene_panics() {
        let _ = AnalyticScene::new("empty", vec![]);
    }

    #[test]
    fn with_aabb_overrides_bounds() {
        let prim = Primitive::matte(
            Shape::Sphere {
                center: Vec3::ZERO,
                radius: 0.1,
            },
            1.0,
            Vec3::ONE,
        );
        let big = Aabb::cube(Vec3::ZERO, 10.0);
        let s = AnalyticScene::with_aabb("custom", vec![prim], big);
        assert_eq!(s.aabb(), big);
    }
}
